"""Regularly sampled time series container.

The paper's phase level consumes "multi-dimensional, high-resolution sensor
values that deliver either time series data or discrete value sequences"
(Section 2).  :class:`TimeSeries` is the numeric half of that contract: a
1-D, regularly sampled signal with an absolute start time and a fixed
sampling period.  Values are stored as ``float64``; missing samples are
``NaN`` and every statistic here is NaN-aware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

__all__ = ["TimeSeries"]


def _as_float_array(values: Sequence[float] | np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"TimeSeries values must be 1-D, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class TimeSeries:
    """A regularly sampled, NaN-aware numeric signal.

    Parameters
    ----------
    values:
        Sample values; coerced to a 1-D ``float64`` array.  ``NaN`` marks a
        missing sample.
    start:
        Timestamp of the first sample, in seconds (an arbitrary epoch).
    step:
        Sampling period in seconds; must be positive.
    name:
        Optional human-readable identifier (usually the sensor id).
    unit:
        Optional physical unit label, e.g. ``"degC"``.
    """

    values: np.ndarray
    start: float = 0.0
    step: float = 1.0
    name: str = ""
    unit: str = ""
    _times_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", _as_float_array(self.values))
        if not math.isfinite(self.start):
            raise ValueError(f"start must be finite, got {self.start}")
        if not (math.isfinite(self.step) and self.step > 0):
            raise ValueError(f"step must be a positive finite number, got {self.step}")

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sliced = self.values[index]
            offset = index.indices(len(self))[0]
            return self.replace(values=sliced, start=self.time_at(offset))
        return float(self.values[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.start == other.start
            and self.step == other.step
            and self.name == other.name
            and self.unit == other.unit
            and np.array_equal(self.values, other.values, equal_nan=True)
        )

    def replace(self, **changes) -> "TimeSeries":
        """Return a copy with the given fields replaced."""
        kwargs = {
            "values": self.values,
            "start": self.start,
            "step": self.step,
            "name": self.name,
            "unit": self.unit,
        }
        kwargs.update(changes)
        return TimeSeries(**kwargs)

    # ------------------------------------------------------------------
    # time axis
    # ------------------------------------------------------------------
    @property
    def end(self) -> float:
        """Timestamp one step past the last sample (half-open interval end)."""
        return self.start + len(self) * self.step

    @property
    def duration(self) -> float:
        return len(self) * self.step

    def times(self) -> np.ndarray:
        """Timestamps of every sample (cached)."""
        cached = self._times_cache.get("times")
        if cached is None or cached.shape[0] != len(self):
            cached = self.start + self.step * np.arange(len(self), dtype=np.float64)
            self._times_cache["times"] = cached
        return cached

    def time_at(self, index: int) -> float:
        if index < 0:
            index += len(self)
        return self.start + index * self.step

    def index_at(self, time: float) -> int:
        """Index of the sample covering ``time`` (floor semantics)."""
        idx = int(math.floor((time - self.start) / self.step))
        if idx < 0 or idx >= len(self):
            raise IndexError(
                f"time {time} outside series span [{self.start}, {self.end})"
            )
        return idx

    def slice_time(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with timestamps in the half-open window ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError(f"empty time window: t1={t1} < t0={t0}")
        lo = max(0, int(math.ceil((t0 - self.start) / self.step - 1e-12)))
        hi = min(len(self), int(math.ceil((t1 - self.start) / self.step - 1e-12)))
        hi = max(hi, lo)
        return self.replace(values=self.values[lo:hi], start=self.time_at(lo) if lo < len(self) else self.end)

    # ------------------------------------------------------------------
    # NaN handling
    # ------------------------------------------------------------------
    @property
    def n_missing(self) -> int:
        return int(np.isnan(self.values).sum())

    @property
    def is_complete(self) -> bool:
        return self.n_missing == 0

    def dropna(self) -> np.ndarray:
        """The finite values only (loses the time axis)."""
        return self.values[~np.isnan(self.values)]

    def fillna(self, strategy: str = "interpolate") -> "TimeSeries":
        """Return a copy with missing samples filled.

        ``strategy`` is one of ``"interpolate"`` (linear, edge-extended),
        ``"ffill"``, ``"mean"``, or ``"zero"``.
        """
        if strategy not in ("interpolate", "ffill", "mean", "zero"):
            raise ValueError(f"unknown fill strategy {strategy!r}")
        mask = np.isnan(self.values)
        if not mask.any():
            return self
        filled = self.values.copy()
        if strategy == "interpolate":
            idx = np.arange(len(self))
            good = ~mask
            if not good.any():
                raise ValueError("cannot interpolate a fully missing series")
            filled[mask] = np.interp(idx[mask], idx[good], filled[good])
        elif strategy == "ffill":
            good_idx = np.where(~mask)[0]
            if good_idx.size == 0:
                raise ValueError("cannot forward-fill a fully missing series")
            positions = np.searchsorted(good_idx, np.arange(len(self)), side="right") - 1
            positions = np.clip(positions, 0, good_idx.size - 1)
            filled = filled[good_idx[positions]]
        elif strategy == "mean":
            filled[mask] = np.nanmean(self.values)
        elif strategy == "zero":
            filled[mask] = 0.0
        return self.replace(values=filled)

    # ------------------------------------------------------------------
    # statistics (all NaN-aware)
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return float(np.nanmean(self.values)) if len(self) else math.nan

    def std(self, ddof: int = 0) -> float:
        finite = self.dropna()
        if finite.size <= ddof:
            return math.nan
        return float(np.std(finite, ddof=ddof))

    def median(self) -> float:
        return float(np.nanmedian(self.values)) if len(self) else math.nan

    def mad(self) -> float:
        """Median absolute deviation (robust scale)."""
        finite = self.dropna()
        if finite.size == 0:
            return math.nan
        med = np.median(finite)
        return float(np.median(np.abs(finite - med)))

    def min(self) -> float:
        return float(np.nanmin(self.values)) if self.dropna().size else math.nan

    def max(self) -> float:
        return float(np.nanmax(self.values)) if self.dropna().size else math.nan

    def zscores(self, robust: bool = False) -> np.ndarray:
        """Per-sample standard scores; robust uses median/MAD."""
        if robust:
            center = self.median()
            scale = self.mad() * 1.4826  # consistency constant for Gaussians
        else:
            center = self.mean()
            scale = self.std()
        if not (math.isfinite(scale) and scale > 0):
            return np.zeros(len(self))
        return (self.values - center) / scale

    # ------------------------------------------------------------------
    # arithmetic & transforms
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "TimeSeries":
        out = np.asarray(fn(self.values), dtype=np.float64)
        if out.shape != self.values.shape:
            raise ValueError("map function must preserve the series length")
        return self.replace(values=out)

    def __add__(self, other):
        return self._binop(other, np.add)

    def __sub__(self, other):
        return self._binop(other, np.subtract)

    def __mul__(self, other):
        return self._binop(other, np.multiply)

    def _binop(self, other, op) -> "TimeSeries":
        if isinstance(other, TimeSeries):
            if len(other) != len(self):
                raise ValueError("series length mismatch")
            if other.step != self.step or other.start != self.start:
                raise ValueError("series time-axis mismatch")
            return self.replace(values=op(self.values, other.values))
        return self.replace(values=op(self.values, float(other)))

    def diff(self, lag: int = 1) -> "TimeSeries":
        """Lagged difference; the result is ``lag`` samples shorter."""
        if lag < 1:
            raise ValueError("lag must be >= 1")
        if lag >= len(self):
            return self.replace(values=np.empty(0), start=self.end)
        return self.replace(
            values=self.values[lag:] - self.values[:-lag],
            start=self.time_at(lag),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"TimeSeries(n={len(self)}, start={self.start}, step={self.step}"
            f"{label})"
        )
