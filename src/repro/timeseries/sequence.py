"""Discrete value sequences (label sequences).

The phase level delivers "either time series data or discrete value
sequences during the corresponding phase"; "discrete sequences are made of
labels" (Section 2 of the paper).  :class:`DiscreteSequence` is that second
data shape: an ordered sequence of hashable symbols with an optional
alphabet, plus the n-gram utilities the sequence detectors (FSA, HMM, NPD,
NMD, LCS, match-count) are built on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterator, Tuple

__all__ = ["DiscreteSequence"]

Symbol = Hashable


@dataclass(frozen=True)
class DiscreteSequence:
    """An ordered sequence of labels drawn from a finite alphabet.

    Parameters
    ----------
    symbols:
        The labels, in temporal order.  Any hashable values are accepted.
    alphabet:
        Optional explicit alphabet.  When omitted it is inferred from the
        observed symbols; when given, every symbol must belong to it.
    name:
        Optional identifier.
    """

    symbols: Tuple[Symbol, ...]
    alphabet: Tuple[Symbol, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "symbols", tuple(self.symbols))
        if self.alphabet:
            object.__setattr__(self, "alphabet", tuple(dict.fromkeys(self.alphabet)))
            allowed = set(self.alphabet)
            bad = [s for s in self.symbols if s not in allowed]
            if bad:
                raise ValueError(
                    f"symbols {sorted(map(repr, set(bad)))} not in declared alphabet"
                )
        else:
            object.__setattr__(
                self, "alphabet", tuple(dict.fromkeys(self.symbols))
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self.symbols)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return DiscreteSequence(self.symbols[index], alphabet=self.alphabet)
        return self.symbols[index]

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self.symbols

    # ------------------------------------------------------------------
    def counts(self) -> Counter:
        """Multiplicity of each observed symbol."""
        return Counter(self.symbols)

    def ngrams(self, n: int) -> Iterator[Tuple[Symbol, ...]]:
        """All contiguous length-``n`` windows, in order."""
        if n < 1:
            raise ValueError("n must be >= 1")
        for i in range(len(self.symbols) - n + 1):
            yield self.symbols[i : i + n]

    def ngram_counts(self, n: int) -> Counter:
        return Counter(self.ngrams(n))

    def windows(self, width: int, stride: int = 1) -> Iterator["DiscreteSequence"]:
        """Sliding sub-sequences of the given width."""
        if width < 1 or stride < 1:
            raise ValueError("width and stride must be >= 1")
        for i in range(0, len(self.symbols) - width + 1, stride):
            yield DiscreteSequence(
                self.symbols[i : i + width], alphabet=self.alphabet
            )

    def index_encode(self) -> Tuple[int, ...]:
        """Map symbols to their alphabet indices (stable, 0-based)."""
        lookup = {s: i for i, s in enumerate(self.alphabet)}
        return tuple(lookup[s] for s in self.symbols)

    def concat(self, other: "DiscreteSequence") -> "DiscreteSequence":
        merged_alphabet = tuple(dict.fromkeys(self.alphabet + other.alphabet))
        return DiscreteSequence(
            self.symbols + other.symbols, alphabet=merged_alphabet
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(map(repr, self.symbols[:6]))
        ellipsis = ", …" if len(self.symbols) > 6 else ""
        return f"DiscreteSequence([{head}{ellipsis}], n={len(self)})"
