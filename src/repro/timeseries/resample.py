"""Resolution changes between production levels.

Section 1 of the paper: "data is assigned by a computer-aided quality
assurance (CAQ) to a higher hierarchy level if it has a lower resolution and
vice versa".  Downsampling (aggregation) moves a signal up the hierarchy;
upsampling moves it down.  Aggregations are mass-conserving for ``sum`` and
NaN-aware throughout.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from .series import TimeSeries

__all__ = ["downsample", "upsample", "align", "AGGREGATIONS"]


def _agg_last(chunk: np.ndarray) -> float:
    finite = chunk[~np.isnan(chunk)]
    return float(finite[-1]) if finite.size else math.nan


def _agg_first(chunk: np.ndarray) -> float:
    finite = chunk[~np.isnan(chunk)]
    return float(finite[0]) if finite.size else math.nan


AGGREGATIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda c: float(np.nanmean(c)) if np.isfinite(c).any() else math.nan,
    "sum": lambda c: float(np.nansum(c)) if np.isfinite(c).any() else math.nan,
    "min": lambda c: float(np.nanmin(c)) if np.isfinite(c).any() else math.nan,
    "max": lambda c: float(np.nanmax(c)) if np.isfinite(c).any() else math.nan,
    "median": lambda c: float(np.nanmedian(c)) if np.isfinite(c).any() else math.nan,
    "std": lambda c: float(np.nanstd(c)) if np.isfinite(c).any() else math.nan,
    "first": _agg_first,
    "last": _agg_last,
}


def downsample(series: TimeSeries, factor: int, agg: str = "mean") -> TimeSeries:
    """Aggregate every ``factor`` consecutive samples into one.

    A trailing partial bucket is aggregated as well (it covers fewer
    samples).  ``factor == 1`` returns the series unchanged (idempotence).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if agg not in AGGREGATIONS:
        raise ValueError(f"unknown aggregation {agg!r}; choose from {sorted(AGGREGATIONS)}")
    if factor == 1:
        return series
    fn = AGGREGATIONS[agg]
    values = series.values
    n_out = math.ceil(len(values) / factor)
    out = np.empty(n_out)
    for j in range(n_out):
        out[j] = fn(values[j * factor : (j + 1) * factor])
    return series.replace(values=out, step=series.step * factor)


def upsample(series: TimeSeries, factor: int, method: str = "hold") -> TimeSeries:
    """Expand each sample into ``factor`` samples at a finer resolution.

    ``method`` is ``"hold"`` (zero-order hold — each value repeats) or
    ``"linear"`` (linear interpolation between consecutive samples, holding
    the final value flat).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return series
    values = series.values
    n = len(values)
    if n == 0:
        return series.replace(step=series.step / factor)
    if method == "hold":
        out = np.repeat(values, factor)
    elif method == "linear":
        coarse_pos = np.arange(n, dtype=np.float64)
        fine_pos = np.arange(n * factor, dtype=np.float64) / factor
        fine_pos = np.minimum(fine_pos, coarse_pos[-1])
        mask = np.isnan(values)
        if mask.all():
            out = np.full(n * factor, math.nan)
        elif mask.any():
            good = ~mask
            out = np.interp(fine_pos, coarse_pos[good], values[good])
        else:
            out = np.interp(fine_pos, coarse_pos, values)
    else:
        raise ValueError(f"unknown upsample method {method!r}")
    return series.replace(values=out, step=series.step / factor)


def align(a: TimeSeries, b: TimeSeries, agg: str = "mean") -> tuple[TimeSeries, TimeSeries]:
    """Bring two series to a common (coarser) resolution and overlapping span.

    The finer series is downsampled to the coarser step (steps must be
    integer multiples); both are then cut to the overlapping time window.
    This is the primitive behind cross-sensor support checking when the
    corresponding sensors record at different rates.
    """
    if a.step > b.step:
        coarse, fine = a, b
        swapped = False
    else:
        coarse, fine = b, a
        swapped = True
    ratio = coarse.step / fine.step
    if abs(ratio - round(ratio)) > 1e-9:
        raise ValueError(
            f"steps {a.step} and {b.step} are not integer multiples; cannot align"
        )
    fine_ds = downsample(fine, int(round(ratio)), agg=agg)
    t0 = max(coarse.start, fine_ds.start)
    t1 = min(coarse.end, fine_ds.end)
    if t1 <= t0:
        raise ValueError("series do not overlap in time")
    coarse_cut = coarse.slice_time(t0, t1)
    fine_cut = fine_ds.slice_time(t0, t1)
    n = min(len(coarse_cut), len(fine_cut))
    coarse_cut = coarse_cut[:n]
    fine_cut = fine_cut[:n]
    return (fine_cut, coarse_cut) if swapped else (coarse_cut, fine_cut)
