"""Time-series substrate: containers, windows, rolling stats, resampling, SAX.

The production hierarchy of the paper moves data between resolutions
(Section 1: CAQ assigns data across hierarchy levels by resolution).  This
subpackage provides the two data shapes of the phase level — numeric
:class:`TimeSeries` and label :class:`DiscreteSequence` — plus the window,
rolling-statistic, resampling, and symbolization machinery every detector
family is built on.
"""

from .rolling import (
    ewma,
    rolling_mad,
    rolling_mean,
    rolling_median,
    rolling_std,
    rolling_zscore,
)
from .resample import AGGREGATIONS, align, downsample, upsample
from .sax import gaussian_breakpoints, paa, sax_symbolize, sax_word
from .sequence import DiscreteSequence
from .series import TimeSeries
from .transforms import (
    autocorrelation,
    detrend_linear,
    estimate_period,
    fft_band_energies,
    split_train_test,
    znormalize,
)
from .windows import (
    FEATURE_NAMES,
    Window,
    sliding_window_matrix,
    sliding_windows,
    tumbling_windows,
    window_features,
    window_scores_to_point_scores,
)

__all__ = [
    "TimeSeries",
    "DiscreteSequence",
    "Window",
    "sliding_windows",
    "sliding_window_matrix",
    "tumbling_windows",
    "window_features",
    "window_scores_to_point_scores",
    "FEATURE_NAMES",
    "rolling_mean",
    "rolling_std",
    "rolling_median",
    "rolling_mad",
    "rolling_zscore",
    "ewma",
    "downsample",
    "upsample",
    "align",
    "AGGREGATIONS",
    "paa",
    "sax_word",
    "sax_symbolize",
    "gaussian_breakpoints",
    "znormalize",
    "detrend_linear",
    "fft_band_energies",
    "autocorrelation",
    "estimate_period",
    "split_train_test",
]
