"""Stationarizing and normalizing transforms.

Detrending, z-normalization, and spectral helpers shared by the detector
library (the vibration-signature detector works on band energies; the AR
detector wants a detrended signal).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .series import TimeSeries

__all__ = [
    "znormalize",
    "detrend_linear",
    "fft_band_energies",
    "autocorrelation",
    "estimate_period",
]


def _values(series) -> np.ndarray:
    if isinstance(series, TimeSeries):
        return series.values
    return np.asarray(series, dtype=np.float64)


def znormalize(series, robust: bool = False) -> np.ndarray:
    """Zero-center and unit-scale; robust variant uses median/MAD."""
    x = _values(series)
    finite = x[~np.isnan(x)]
    if finite.size == 0:
        return np.zeros_like(x)
    if robust:
        center = np.median(finite)
        scale = np.median(np.abs(finite - center)) * 1.4826
    else:
        center = finite.mean()
        scale = finite.std()
    # relative threshold: float error on a large constant signal must not
    # masquerade as genuine variation
    if scale <= 1e-9 * max(1.0, abs(center)):
        return x - center
    return (x - center) / scale


def detrend_linear(series) -> np.ndarray:
    """Remove the least-squares straight line (NaN samples are ignored in the fit)."""
    x = _values(series)
    n = len(x)
    if n < 2:
        return np.zeros_like(x)
    t = np.arange(n, dtype=np.float64)
    good = ~np.isnan(x)
    if good.sum() < 2:
        return x.copy()
    coeffs = np.polyfit(t[good], x[good], deg=1)
    return x - np.polyval(coeffs, t)


def fft_band_energies(series, n_bands: int = 8) -> np.ndarray:
    """Normalized spectral energy in ``n_bands`` equal frequency bands.

    This is the "vibration signature" feature of Nairac et al. 1999: the
    shape of the power spectrum summarized as a fixed-length vector, robust
    to phase and (after normalization) to amplitude.
    """
    x = _values(series)
    x = np.nan_to_num(x - np.nanmean(x), nan=0.0)
    if len(x) < 2 or n_bands < 1:
        return np.zeros(max(n_bands, 1))
    spectrum = np.abs(np.fft.rfft(x)) ** 2
    spectrum = spectrum[1:]  # drop DC
    if spectrum.size == 0:
        return np.zeros(n_bands)
    edges = np.linspace(0, spectrum.size, n_bands + 1).astype(int)
    energies = np.array(
        [spectrum[edges[i] : edges[i + 1]].sum() for i in range(n_bands)]
    )
    total = energies.sum()
    return energies / total if total > 0 else energies


def autocorrelation(series, max_lag: int) -> np.ndarray:
    """Sample autocorrelation for lags ``0..max_lag`` (biased estimator)."""
    x = _values(series)
    x = x[~np.isnan(x)]
    n = len(x)
    if n == 0:
        return np.zeros(max_lag + 1)
    x = x - x.mean()
    denom = float((x * x).sum())
    if denom <= 1e-12:
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    out = np.empty(min(max_lag, n - 1) + 1)
    for lag in range(len(out)):
        out[lag] = float((x[: n - lag] * x[lag:]).sum()) / denom
    if len(out) < max_lag + 1:
        out = np.concatenate([out, np.zeros(max_lag + 1 - len(out))])
    return out


def estimate_period(series, min_period: int = 2, max_period: int | None = None,
                    threshold: float = 0.2) -> int:
    """Dominant period via the first strong autocorrelation *peak*.

    A global argmax would be biased toward small lags (seasonal signals
    have high short-lag autocorrelation too, and the biased estimator
    shrinks long lags); a true period shows as a local maximum instead.
    Returns 0 when no peak clears ``threshold``.
    """
    x = _values(series)
    n = len(x)
    if max_period is None:
        max_period = n // 2
    max_period = min(max_period, n - 2)
    if max_period < min_period:
        return 0
    acf = autocorrelation(x, max_period + 1)
    for lag in range(max(2, min_period), max_period + 1):
        if (
            acf[lag] > threshold
            and acf[lag] >= acf[lag - 1]
            and acf[lag] >= acf[lag + 1]
        ):
            return lag
    return 0


def split_train_test(series: TimeSeries, train_fraction: float = 0.5) -> Tuple[TimeSeries, TimeSeries]:
    """Chronological split for semi-supervised detectors (fit on clean prefix)."""
    if not 0 < train_fraction < 1:
        raise ValueError("train_fraction must be in (0, 1)")
    cut = int(len(series) * train_fraction)
    return series[:cut], series[cut:]
