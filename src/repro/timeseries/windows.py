"""Fixed-size window extraction over numeric series.

Section 3 of the paper: "anomalies in time series can be extracted by a
straightforward computation or by using overlapping fixed size windows,
which, in turn, are aggregated".  These helpers produce the overlapping /
tumbling window views every window-based detector (NPD, NMD, OS, window
features for the supervised detectors) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List

import numpy as np

from .series import TimeSeries

__all__ = [
    "Window",
    "sliding_windows",
    "sliding_window_matrix",
    "tumbling_windows",
    "window_features",
    "FEATURE_NAMES",
]


@dataclass(frozen=True)
class Window:
    """One extracted window: the sample span plus its values."""

    start_index: int
    values: np.ndarray

    @property
    def end_index(self) -> int:
        """Index one past the last sample of the window (half-open)."""
        return self.start_index + len(self.values)

    @property
    def center_index(self) -> int:
        return self.start_index + len(self.values) // 2

    def __len__(self) -> int:
        return int(self.values.shape[0])


def _resolve_values(series) -> np.ndarray:
    if isinstance(series, TimeSeries):
        return series.values
    return np.asarray(series, dtype=np.float64)


def sliding_windows(series, width: int, stride: int = 1) -> Iterator[Window]:
    """Overlapping fixed-size windows, left to right.

    A trailing remainder shorter than ``width`` is not emitted; window-based
    detectors require equal-length windows.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    values = _resolve_values(series)
    for start in range(0, len(values) - width + 1, stride):
        yield Window(start, values[start : start + width])


def sliding_window_matrix(series, width: int, stride: int = 1) -> np.ndarray:
    """All sliding windows stacked as rows of a ``(n_windows, width)`` matrix."""
    values = _resolve_values(series)
    if width < 1 or stride < 1:
        raise ValueError("width and stride must be >= 1")
    n = (len(values) - width) // stride + 1
    if n <= 0:
        return np.empty((0, width))
    # stride-tricks view, then an explicit copy so callers may mutate rows
    view = np.lib.stride_tricks.sliding_window_view(values, width)[::stride]
    return np.array(view[:n])


def tumbling_windows(series, width: int) -> Iterator[Window]:
    """Non-overlapping adjacent windows (stride == width)."""
    yield from sliding_windows(series, width, stride=width)


FEATURE_NAMES = ("mean", "std", "min", "max", "slope", "energy")


def window_features(series, width: int, stride: int = 1) -> np.ndarray:
    """Aggregate each sliding window into a small feature vector.

    Features per window (see :data:`FEATURE_NAMES`): mean, standard
    deviation, min, max, least-squares slope, and mean squared value
    (energy).  Returns a ``(n_windows, 6)`` matrix.
    """
    mat = sliding_window_matrix(series, width, stride)
    if mat.shape[0] == 0:
        return np.empty((0, len(FEATURE_NAMES)))
    x = np.arange(width, dtype=np.float64)
    x = x - x.mean()
    denom = float((x * x).sum()) or 1.0
    slope = (mat * x).sum(axis=1) / denom
    feats = np.column_stack(
        [
            mat.mean(axis=1),
            mat.std(axis=1),
            mat.min(axis=1),
            mat.max(axis=1),
            slope,
            (mat * mat).mean(axis=1),
        ]
    )
    return feats


def window_scores_to_point_scores(
    window_scores: np.ndarray,
    n_points: int,
    width: int,
    stride: int = 1,
    reduce: Callable[[np.ndarray], float] = np.max,
) -> np.ndarray:
    """Spread per-window scores back onto the original sample axis.

    Each sample receives the reduction (default: max) of the scores of all
    windows covering it; samples covered by no window inherit their nearest
    covered neighbour's score.  This is how window-based detectors report
    "exact positions of anomalies" (Section 3).
    """
    if n_points <= 0:
        return np.empty(0)
    scores: List[List[float]] = [[] for _ in range(n_points)]
    for w_idx, s in enumerate(np.asarray(window_scores, dtype=np.float64)):
        lo = w_idx * stride
        hi = min(lo + width, n_points)
        for i in range(lo, hi):
            scores[i].append(float(s))
    out = np.full(n_points, np.nan)
    for i, bucket in enumerate(scores):
        if bucket:
            out[i] = float(reduce(np.asarray(bucket)))
    # fill uncovered tail/head samples from nearest covered sample
    if np.isnan(out).any():
        covered = np.where(~np.isnan(out))[0]
        if covered.size == 0:
            return np.zeros(n_points)
        idx = np.arange(n_points)
        nearest = covered[np.argmin(np.abs(idx[:, None] - covered[None, :]), axis=1)]
        out = out[nearest]
    return out
