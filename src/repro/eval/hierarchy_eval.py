"""Evaluation harness for Algorithm 1 on simulated plants.

Runs the hierarchical pipeline against ground truth and reduces the result
to the metrics the paper's claims live on: ranking quality for real
process faults (hierarchical triple vs flat outlierness), support
separation between fault classes, and measurement-error warning accuracy.
Supports multi-seed replication so benchmark claims are not one lucky
draw.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core import HierarchicalDetectionPipeline, ProductionLevel
from ..plant import FaultKind, PlantConfig, simulate_plant
from .metrics import average_precision, precision_at_k

__all__ = ["Alg1Metrics", "evaluate_alg1", "replicate_alg1"]


@dataclass(frozen=True)
class Alg1Metrics:
    """One plant run's evaluation of the hierarchical triple."""

    hier_p5: float
    hier_p10: float
    hier_ap: float
    flat_p5: float
    flat_p10: float
    flat_ap: float
    support_process: float
    support_sensor: float
    warning_accuracy: float
    n_candidates: int
    n_process_faults: int
    global_histogram: tuple

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _rank_labels(reports, truth_keys) -> np.ndarray:
    return np.array(
        [
            (r.candidate.machine_id, r.candidate.job_index,
             r.candidate.phase_name) in truth_keys
            for r in reports
        ]
    )


def evaluate_alg1(
    dataset,
    pipeline: Optional[HierarchicalDetectionPipeline] = None,
) -> Alg1Metrics:
    """Evaluate one plant run (build the pipeline unless one is supplied)."""
    pipeline = pipeline or HierarchicalDetectionPipeline(dataset)
    hier = pipeline.run()
    flat = pipeline.flat_baseline()

    process = {
        (f.machine_id, f.job_index, f.phase_name)
        for f in dataset.faults_of_kind(FaultKind.PROCESS)
    }
    sensor = {
        (f.machine_id, f.job_index, f.phase_name)
        for f in dataset.faults_of_kind(FaultKind.SENSOR)
    }

    hier_labels = _rank_labels(hier, process)
    flat_labels = _rank_labels(flat, process)
    hier_rank = np.arange(len(hier), 0, -1, dtype=float)
    flat_rank = np.arange(len(flat), 0, -1, dtype=float)

    proc_support = [
        r.support for r in hier
        if r.n_corresponding > 0
        and (r.candidate.machine_id, r.candidate.job_index,
             r.candidate.phase_name) in process
    ]
    sens_support = [
        r.support for r in hier
        if r.n_corresponding > 0
        and (r.candidate.machine_id, r.candidate.job_index,
             r.candidate.phase_name) in sensor
    ]

    job_reports = pipeline.run(start_level=ProductionLevel.JOB)
    phase_visible = {
        (f.machine_id, f.job_index)
        for f in dataset.faults
        if f.kind in (FaultKind.PROCESS, FaultKind.SENSOR)
    }
    correct = 0
    for r in job_reports:
        key = (r.candidate.machine_id, r.candidate.job_index)
        should_warn = key not in phase_visible
        correct += int(r.measurement_warning == should_warn)
    warn_acc = correct / len(job_reports) if job_reports else 1.0

    return Alg1Metrics(
        hier_p5=precision_at_k(hier_labels, hier_rank, 5) if len(hier) else 0.0,
        hier_p10=precision_at_k(hier_labels, hier_rank, 10) if len(hier) else 0.0,
        hier_ap=average_precision(hier_labels, hier_rank) if len(hier) else 0.0,
        flat_p5=precision_at_k(flat_labels, flat_rank, 5) if len(flat) else 0.0,
        flat_p10=precision_at_k(flat_labels, flat_rank, 10) if len(flat) else 0.0,
        flat_ap=average_precision(flat_labels, flat_rank) if len(flat) else 0.0,
        support_process=float(np.mean(proc_support)) if proc_support else np.nan,
        support_sensor=float(np.mean(sens_support)) if sens_support else np.nan,
        warning_accuracy=warn_acc,
        n_candidates=len(hier),
        n_process_faults=len(process),
        global_histogram=tuple(
            np.bincount([r.global_score for r in hier], minlength=6).tolist()
        ),
    )


def replicate_alg1(
    seeds: Sequence[int],
    config_factory: Optional[Callable[[int], PlantConfig]] = None,
) -> List[Alg1Metrics]:
    """Evaluate Algorithm 1 over several seeded plants (one metrics row each)."""
    if config_factory is None:
        from ..plant import FaultConfig

        def config_factory(seed: int) -> PlantConfig:
            return PlantConfig(
                seed=seed, n_lines=2, machines_per_line=3, jobs_per_machine=12,
                faults=FaultConfig(
                    process_fault_rate=0.15, sensor_fault_rate=0.15,
                    setup_anomaly_rate=0.06,
                ),
            )

    return [evaluate_alg1(simulate_plant(config_factory(seed))) for seed in seeds]


def aggregate(metrics: Sequence[Alg1Metrics]) -> Dict[str, float]:
    """Mean of every numeric field over replications (NaN-aware)."""
    if not metrics:
        raise ValueError("need at least one metrics row")
    out: Dict[str, float] = {}
    for f in fields(Alg1Metrics):
        values = [getattr(m, f.name) for m in metrics]
        if f.name in ("global_histogram",):
            continue
        out[f.name] = float(np.nanmean(np.asarray(values, dtype=float)))
    return out
