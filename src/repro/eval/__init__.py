"""Evaluation substrate: detection metrics and ranking comparison."""

from .metrics import (
    ConfusionCounts,
    average_precision,
    best_f1,
    confusion,
    f1_score,
    point_adjust,
    precision,
    precision_at_k,
    recall,
    roc_auc,
)
from .hierarchy_eval import Alg1Metrics, aggregate, evaluate_alg1, replicate_alg1
from .ranking import (
    kendall_tau,
    rankdata,
    reciprocal_rank,
    spearman_correlation,
    top_k_overlap,
)

__all__ = [
    "ConfusionCounts",
    "confusion",
    "precision",
    "recall",
    "f1_score",
    "roc_auc",
    "average_precision",
    "precision_at_k",
    "best_f1",
    "point_adjust",
    "rankdata",
    "spearman_correlation",
    "kendall_tau",
    "top_k_overlap",
    "reciprocal_rank",
    "Alg1Metrics",
    "evaluate_alg1",
    "replicate_alg1",
    "aggregate",
]
