"""Ranking comparison utilities.

Outlierness scores "allow for a ranking of outliers, which cannot be done
using a binary outlier score" (Section 5 of the paper).  These helpers
compare rankings produced by different detectors, levels, or fusion
strategies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "rankdata",
    "spearman_correlation",
    "kendall_tau",
    "top_k_overlap",
    "reciprocal_rank",
]


def rankdata(scores) -> np.ndarray:
    """Average ranks (1-based) with ties sharing the mean rank."""
    s = np.asarray(scores, dtype=np.float64)
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(len(s), dtype=np.float64)
    i = 0
    sorted_s = s[order]
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_s[j + 1] == sorted_s[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman_correlation(a, b) -> float:
    """Spearman rank correlation between two score vectors."""
    ra = rankdata(a)
    rb = rankdata(b)
    if len(ra) != len(rb):
        raise ValueError("score vectors must have equal length")
    if len(ra) < 2:
        return 0.0
    ra = ra - ra.mean()
    rb = rb - rb.mean()
    denom = np.sqrt((ra * ra).sum() * (rb * rb).sum())
    return float((ra * rb).sum() / denom) if denom > 0 else 0.0


def kendall_tau(a, b) -> float:
    """Kendall's tau-a over all item pairs (O(n^2), fine for our sizes)."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if len(x) != len(y):
        raise ValueError("score vectors must have equal length")
    n = len(x)
    if n < 2:
        return 0.0
    concordant = discordant = 0
    for i in range(n):
        dx = x[i + 1 :] - x[i]
        dy = y[i + 1 :] - y[i]
        prod = dx * dy
        concordant += int((prod > 0).sum())
        discordant += int((prod < 0).sum())
    total = n * (n - 1) / 2
    return (concordant - discordant) / total


def top_k_overlap(a, b, k: int) -> float:
    """Jaccard overlap of the top-``k`` items of two rankings."""
    if k < 1:
        raise ValueError("k must be >= 1")
    sa = np.asarray(a, dtype=np.float64)
    sb = np.asarray(b, dtype=np.float64)
    if len(sa) != len(sb):
        raise ValueError("score vectors must have equal length")
    k = min(k, len(sa))
    top_a = set(np.argsort(-sa, kind="mergesort")[:k].tolist())
    top_b = set(np.argsort(-sb, kind="mergesort")[:k].tolist())
    union = top_a | top_b
    return len(top_a & top_b) / len(union) if union else 0.0


def reciprocal_rank(labels: Sequence[bool], scores) -> float:
    """1 / rank of the first true anomaly when sorted by decreasing score."""
    y = np.asarray(labels).astype(bool)
    s = np.asarray(scores, dtype=np.float64)
    if y.shape != s.shape:
        raise ValueError("labels and scores must have equal length")
    order = np.argsort(-s, kind="mergesort")
    for rank, idx in enumerate(order, start=1):
        if y[idx]:
            return 1.0 / rank
    return 0.0
