"""Detection-quality metrics, implemented from first principles.

Binary-decision metrics (precision / recall / F1), threshold-free ranking
metrics (ROC-AUC, average precision, precision@k), and the point-adjusted
event protocol used when an anomaly spans several samples (detecting any
sample of an event counts as detecting the event).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfusionCounts",
    "confusion",
    "precision",
    "recall",
    "f1_score",
    "roc_auc",
    "average_precision",
    "precision_at_k",
    "best_f1",
    "point_adjust",
]


def _as_bool(labels) -> np.ndarray:
    arr = np.asarray(labels)
    return arr.astype(bool)


def _as_scores(scores) -> np.ndarray:
    arr = np.asarray(scores, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {arr.shape}")
    if np.isnan(arr).any():
        raise ValueError("scores contain NaN")
    return arr


@dataclass(frozen=True)
class ConfusionCounts:
    """The four cells of a binary confusion matrix."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def n(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0


def confusion(labels, predictions) -> ConfusionCounts:
    """Confusion counts from boolean ground truth and predictions."""
    y = _as_bool(labels)
    p = _as_bool(predictions)
    if y.shape != p.shape:
        raise ValueError(f"shape mismatch: labels {y.shape} vs predictions {p.shape}")
    return ConfusionCounts(
        tp=int((y & p).sum()),
        fp=int((~y & p).sum()),
        fn=int((y & ~p).sum()),
        tn=int((~y & ~p).sum()),
    )


def precision(labels, predictions) -> float:
    """Fraction of predicted positives that are true anomalies."""
    return confusion(labels, predictions).precision


def recall(labels, predictions) -> float:
    """Fraction of true anomalies that are predicted positive."""
    return confusion(labels, predictions).recall


def f1_score(labels, predictions) -> float:
    """Harmonic mean of precision and recall."""
    return confusion(labels, predictions).f1


def roc_auc(labels, scores) -> float:
    """Area under the ROC curve via the Mann-Whitney rank statistic.

    Ties in scores receive the average rank, so the estimate is exact in
    the presence of tied scores.  Returns 0.5 when either class is empty
    (no ranking information).
    """
    y = _as_bool(labels)
    s = _as_scores(scores)
    if y.shape != s.shape:
        raise ValueError("labels and scores must have equal length")
    n_pos = int(y.sum())
    n_neg = int((~y).sum())
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(len(s), dtype=np.float64)
    sorted_scores = s[order]
    i = 0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0  # average 1-based rank
        i = j + 1
    rank_sum_pos = float(ranks[y].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def average_precision(labels, scores) -> float:
    """Area under the precision-recall curve (step interpolation).

    Equals the mean of precision values at each true-positive rank when
    items are sorted by decreasing score.
    """
    y = _as_bool(labels)
    s = _as_scores(scores)
    if y.shape != s.shape:
        raise ValueError("labels and scores must have equal length")
    n_pos = int(y.sum())
    if n_pos == 0:
        return 0.0
    order = np.argsort(-s, kind="mergesort")
    hits = y[order].astype(np.float64)
    cum_hits = np.cumsum(hits)
    ranks = np.arange(1, len(s) + 1, dtype=np.float64)
    precision_at_rank = cum_hits / ranks
    return float((precision_at_rank * hits).sum() / n_pos)


def precision_at_k(labels, scores, k: int) -> float:
    """Fraction of true anomalies among the ``k`` highest-scored items."""
    y = _as_bool(labels)
    s = _as_scores(scores)
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, len(s))
    top = np.argsort(-s, kind="mergesort")[:k]
    return float(y[top].sum()) / k


def best_f1(labels, scores, n_thresholds: int = 200) -> tuple[float, float]:
    """Best achievable F1 over a threshold sweep; returns (f1, threshold)."""
    y = _as_bool(labels)
    s = _as_scores(scores)
    uniq = np.unique(s)
    if uniq.size > n_thresholds:
        qs = np.linspace(0.0, 1.0, n_thresholds)
        thresholds = np.quantile(uniq, qs)
    else:
        thresholds = uniq
    best = (0.0, float(thresholds[0]) if thresholds.size else 0.0)
    for th in thresholds:
        f1 = confusion(y, s >= th).f1
        if f1 > best[0]:
            best = (f1, float(th))
    return best


def point_adjust(labels, predictions) -> np.ndarray:
    """Point-adjusted predictions for event (span) ground truth.

    For every maximal run of consecutive True labels (one anomalous event),
    if *any* sample of the run is predicted positive, the whole run is
    marked positive.  Predictions outside events are unchanged.  This is
    the standard protocol for span anomalies (level shifts, temporary
    changes) where flagging the onset should earn full credit.
    """
    y = _as_bool(labels)
    p = _as_bool(predictions).copy()
    if y.shape != p.shape:
        raise ValueError("labels and predictions must have equal length")
    n = len(y)
    i = 0
    while i < n:
        if not y[i]:
            i += 1
            continue
        j = i
        while j < n and y[j]:
            j += 1
        if p[i:j].any():
            p[i:j] = True
        i = j
    return p
