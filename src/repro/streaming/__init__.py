"""Streaming/online detection (the paper's calculation-speed challenge).

Constant-memory accumulators, per-sample online detectors, and a
multi-sensor streaming monitor that computes the Algorithm-1 support value
as the data arrives.
"""

from .detectors import CusumDetector, OnlineARDetector, OnlineEWMA, OnlineZScore
from .online_stats import EWStats, P2Quantile, RunningStats
from .stream_monitor import StreamEvent, StreamingSensorMonitor

__all__ = [
    "RunningStats",
    "EWStats",
    "P2Quantile",
    "OnlineZScore",
    "OnlineEWMA",
    "CusumDetector",
    "OnlineARDetector",
    "StreamEvent",
    "StreamingSensorMonitor",
]
