"""Constant-memory online statistics.

Section 5 flags "calculation speed" as a core challenge for production
outlier detection.  These accumulators let detectors score each incoming
sample in O(1) memory and time: Welford mean/variance, exponentially
weighted moments, and a P²-style streaming quantile estimator.
"""

from __future__ import annotations

import math

__all__ = ["RunningStats", "EWStats", "P2Quantile"]


class RunningStats:
    """Welford's online mean / variance.

    Non-finite samples (NaN **and** ±inf — one infinite sample would poison
    the mean forever) are skipped and counted in :attr:`n_skipped`, so
    degraded streams stay visible without corrupting the accumulator.

    Variance convention: **population variance** (``ddof=0``, i.e.
    ``m2 / n``).  This is a deliberate pin, not an accident of Welford's
    recurrence: the batch baselines standardize with ``X.std(axis=0)``
    (numpy's default, also ``ddof=0``), so a streaming z-score computed
    from this accumulator agrees exactly with the batch z-score over the
    same prefix.  ``tests/streaming`` pins that agreement; change both
    sides together or not at all.
    """

    def __init__(self) -> None:
        self.n = 0
        self.n_skipped = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, x: float) -> None:
        if not math.isfinite(x):
            self.n_skipped += 1
            return
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Population variance (``ddof=0``) — matches ``np.std(x) ** 2``."""
        return self._m2 / self.n if self.n else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v and v >= 0 else math.nan  # v==v filters NaN

    def zscore(self, x: float) -> float:
        """Standard score of ``x`` against the history seen so far."""
        if self.n < 2:
            return 0.0
        s = self.std
        if not (s > 1e-9 * max(1.0, abs(self._mean))):
            return 0.0
        return (x - self._mean) / s


class EWStats:
    """Exponentially weighted mean / variance (forgetting factor ``alpha``)."""

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.n_skipped = 0
        self._mean: float | None = None
        self._var = 0.0

    def update(self, x: float) -> None:
        if not math.isfinite(x):
            self.n_skipped += 1
            return
        if self._mean is None:
            self._mean = x
            return
        delta = x - self._mean
        self._mean += self.alpha * delta
        self._var = (1 - self.alpha) * (self._var + self.alpha * delta * delta)

    @property
    def mean(self) -> float:
        return self._mean if self._mean is not None else math.nan

    @property
    def std(self) -> float:
        return math.sqrt(self._var)

    def zscore(self, x: float) -> float:
        if self._mean is None:
            return 0.0
        s = self.std
        if not (s > 1e-9 * max(1.0, abs(self._mean))):
            return 0.0
        return (x - self._mean) / s


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator (5 markers).

    Tracks one quantile ``q`` with O(1) memory; after warm-up the estimate
    converges to the true quantile for stationary inputs.
    """

    def __init__(self, q: float = 0.5) -> None:
        if not 0 < q < 1:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self._warmup: list = []
        self._heights: list | None = None
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self.n = 0
        self.n_skipped = 0

    def update(self, x: float) -> None:
        if not math.isfinite(x):
            self.n_skipped += 1
            return
        self.n += 1
        if self._heights is None:
            self._warmup.append(x)
            if len(self._warmup) == 5:
                self._heights = sorted(self._warmup)
            return
        h = self._heights
        # locate the cell and update extreme markers
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(k + 1, 5):
            self._positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # adjust the middle markers with the parabolic formula
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            pos = self._positions
            if (d >= 1 and pos[i + 1] - pos[i] > 1) or (
                d <= -1 and pos[i - 1] - pos[i] < -1
            ):
                sign = 1.0 if d >= 0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # linear fallback
                    j = i + int(sign)
                    h[i] = h[i] + sign * (h[j] - h[i]) / (pos[j] - pos[i])
                pos[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h = self._heights
        pos = self._positions
        num1 = (pos[i] - pos[i - 1] + sign) * (h[i + 1] - h[i]) / (
            pos[i + 1] - pos[i]
        )
        num2 = (pos[i + 1] - pos[i] - sign) * (h[i] - h[i - 1]) / (
            pos[i] - pos[i - 1]
        )
        return h[i] + sign * (num1 + num2) / (pos[i + 1] - pos[i - 1])

    @property
    def value(self) -> float:
        if self._heights is not None:
            return self._heights[2]
        if self._warmup:
            # Linearly interpolated order statistic at rank q * (n - 1)
            # (numpy's default quantile convention).  Truncating to
            # s[int(q * n)] biased the warm-up estimate high for small
            # samples — the median of 4 came back as the upper-middle
            # element — so warm-up and converged estimates disagreed on
            # stationary input.
            s = sorted(self._warmup)
            pos = self.q * (len(s) - 1)
            lo = int(math.floor(pos))
            hi = min(lo + 1, len(s) - 1)
            frac = pos - lo
            return s[lo] + frac * (s[hi] - s[lo])
        return math.nan
