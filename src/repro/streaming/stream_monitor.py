"""Streaming multi-sensor monitor with online support checking.

The streaming counterpart of the batch pipeline's phase level: one online
detector per channel, one shared clock, and the paper's support value
computed *as the data arrives* — a flagged sample is supported by the
fraction of corresponding channels that have themselves flagged within the
tolerance window.
"""

from __future__ import annotations

import copy
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

from ..core.support import CorrespondenceGraph
from ..obs import Telemetry
from .detectors import OnlineARDetector

__all__ = ["StreamEvent", "StreamingSensorMonitor"]


@dataclass(frozen=True)
class StreamEvent:
    """One flagged sample in the stream."""

    channel_id: str
    time: float
    value: float
    score: float
    support: float
    n_corresponding: int

    @property
    def is_measurement_suspect(self) -> bool:
        return self.n_corresponding > 0 and self.support == 0.0

    def describe(self) -> str:
        suspect = " [suspect]" if self.is_measurement_suspect else ""
        return (
            f"t={self.time:8.1f} {self.channel_id:32s} score={self.score:6.1f} "
            f"support={self.support:.2f}/{self.n_corresponding}{suspect}"
        )


@dataclass
class _Channel:
    detector: object
    threshold: float
    recent_flags: Deque[float] = field(default_factory=deque)
    last_seen: float = -math.inf  # last time a *finite* sample arrived
    n_skipped: int = 0  # non-finite samples ignored on this channel


class StreamingSensorMonitor:
    """Feed ``observe(channel, t, value)``; collect :class:`StreamEvent`.

    Parameters
    ----------
    graph:
        Correspondence graph over channel ids (redundant pairs plus
        cross-level edges), as in the batch pipeline.
    detector_factory:
        Zero-argument callable building one online detector per channel
        (default: :class:`OnlineARDetector`).
    threshold:
        Score at which a sample is flagged.
    tolerance:
        Time window within which a corresponding channel's flag counts as
        support.
    heartbeat_patience:
        Seconds without a finite sample after which a channel counts as
        *stalled*: it stops voting in the support divisor (renormalized,
        exactly like the batch pipeline's quarantine) and shows up in
        :meth:`stalled_channels`.  ``None`` disables the heartbeat.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` bundle.  When enabled, the
        monitor records sample/event/skip counters, wraps
        :meth:`observe_block` in a span, and emits a WARNING-level
        structured log record (channel id + stream timestamp) the moment
        a channel's heartbeat stalls.
    """

    def __init__(
        self,
        graph: CorrespondenceGraph,
        detector_factory: Optional[Callable[[], object]] = None,
        threshold: float = 6.0,
        tolerance: float = 8.0,
        heartbeat_patience: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if heartbeat_patience is not None and heartbeat_patience <= 0:
            raise ValueError("heartbeat_patience must be positive")
        self._graph = graph
        self._factory = detector_factory or OnlineARDetector
        self.threshold = threshold
        self.tolerance = tolerance
        self.heartbeat_patience = heartbeat_patience
        self._channels: Dict[str, _Channel] = {}
        self._events: List[StreamEvent] = []
        self._now = -math.inf  # latest timestamp seen on any channel
        # Earliest instant any unreported channel can stall (a lower bound:
        # heartbeats only ever push a channel's deadline later).  observe()
        # skips the stall sweep entirely while now <= this bound, making the
        # heartbeat check O(1) amortized per sample instead of O(channels).
        self._stall_due = math.inf
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(logger_name="streaming")
        )
        self._reported_stalled: set = set()
        m = self.telemetry.metrics
        self._m_samples = m.counter(
            "repro_stream_samples_total", "Samples fed to the streaming monitor."
        )
        self._m_skipped = m.counter(
            "repro_stream_skipped_total", "Non-finite samples ignored."
        )
        self._m_events = m.counter(
            "repro_stream_events_total", "Flagged samples (stream events)."
        )
        self._m_stalls = m.counter(
            "repro_stream_stalls_total", "Channels whose heartbeat stalled."
        )

    # ------------------------------------------------------------------
    def _channel(self, channel_id: str) -> _Channel:
        state = self._channels.get(channel_id)
        if state is None:
            state = _Channel(detector=self._factory(), threshold=self.threshold)
            self._channels[channel_id] = state
        return state

    def observe(self, channel_id: str, time: float, value: float) -> Optional[StreamEvent]:
        """Process one sample; returns the event if the sample is flagged.

        Non-finite values advance the shared clock and the skip counter but
        neither score nor flag — the sample is treated as missing, and a
        channel that sends only garbage eventually stalls out of the
        support divisor.
        """
        created = channel_id not in self._channels
        state = self._channel(channel_id)
        self._now = max(self._now, time)
        self._m_samples.inc()
        if not math.isfinite(value):
            state.n_skipped += 1
            self._m_skipped.inc()
            if created and self.heartbeat_patience is not None:
                # a channel born of garbage has last_seen=-inf: it must be
                # eligible for the very next stall sweep
                self._stall_due = min(
                    self._stall_due, state.last_seen + self.heartbeat_patience
                )
            self._trim(state, time)
            self._check_stalls()
            return None
        state.last_seen = max(state.last_seen, time)
        recovered = channel_id in self._reported_stalled
        if recovered:
            self._reported_stalled.discard(channel_id)  # heartbeat recovered
        if (created or recovered) and self.heartbeat_patience is not None:
            # (re-)entering the unreported set may pull the earliest
            # deadline forward; existing channels only ever push it back
            self._stall_due = min(
                self._stall_due, state.last_seen + self.heartbeat_patience
            )
        score = state.detector.update(value)
        flagged = score >= state.threshold
        if flagged:
            state.recent_flags.append(time)
        self._trim(state, time)
        self._check_stalls()
        if not flagged:
            return None
        support, n_corr = self._support(channel_id, time)
        event = StreamEvent(
            channel_id=channel_id,
            time=time,
            value=value,
            score=score,
            support=support,
            n_corresponding=n_corr,
        )
        self._events.append(event)
        self._m_events.inc()
        return event

    def observe_block(self, samples: Sequence[tuple]) -> List[StreamEvent]:
        """Convenience: feed (channel, time, value) triples in order."""
        events = []
        with self.telemetry.tracer.span(
            "stream.observe_block", n_samples=len(samples)
        ) as sp:
            for channel_id, time, value in samples:
                event = self.observe(channel_id, time, value)
                if event is not None:
                    events.append(event)
            sp.set(n_events=len(events))
        return events

    def _check_stalls(self) -> None:
        """Emit one WARNING per channel the moment its heartbeat stalls.

        Amortized O(1) per sample: a full sweep over the channel table only
        runs once the shared clock passes ``_stall_due`` — the earliest
        deadline any unreported channel can miss — and each sweep
        recomputes the bound exactly.  A channel stalls when
        ``now - last_seen > patience``, i.e. strictly after
        ``last_seen + patience``, so skipping while ``now <= _stall_due``
        never delays a report past the sample that would have raised it.
        """
        if self.heartbeat_patience is None or not self.telemetry.enabled:
            return
        if self._now <= self._stall_due:
            return
        due = math.inf
        for channel_id, state in self._channels.items():
            if channel_id in self._reported_stalled:
                continue
            if self._is_stalled(state, self._now):
                self._reported_stalled.add(channel_id)
                self._m_stalls.inc()
                self.telemetry.warning(
                    f"heartbeat stalled on {channel_id}",
                    channel_id=channel_id,
                    timestamp=self._now,
                    last_seen=state.last_seen,
                    patience=self.heartbeat_patience,
                )
            else:
                due = min(due, state.last_seen + self.heartbeat_patience)
        self._stall_due = due

    # ------------------------------------------------------------------
    def _trim(self, state: _Channel, now: float) -> None:
        horizon = now - 2 * self.tolerance
        while state.recent_flags and state.recent_flags[0] < horizon:
            state.recent_flags.popleft()

    def _support(self, channel_id: str, time: float) -> tuple:
        corresponding = self._graph.corresponding(channel_id)
        counted = 0
        supporters = 0
        for other in corresponding:
            state = self._channels.get(other)
            if state is None:
                continue  # channel never reported; it cannot vote
            if self._is_stalled(state, time):
                continue  # heartbeat expired: renormalize the divisor
            counted += 1
            if any(abs(t - time) <= self.tolerance for t in state.recent_flags):
                supporters += 1
        support = supporters / counted if counted else 0.0
        return support, counted

    def _is_stalled(self, state: _Channel, now: float) -> bool:
        if self.heartbeat_patience is None:
            return False
        return now - state.last_seen > self.heartbeat_patience

    def stalled_channels(self, now: Optional[float] = None) -> List[str]:
        """Channels whose heartbeat has expired at ``now`` (default: the
        latest timestamp observed on any channel), sorted by id."""
        if self.heartbeat_patience is None:
            return []
        at = self._now if now is None else now
        return sorted(
            cid
            for cid, state in self._channels.items()
            if self._is_stalled(state, at)
        )

    def skipped_counts(self) -> Dict[str, int]:
        """Non-finite samples ignored per channel (only nonzero entries)."""
        return {
            cid: state.n_skipped
            for cid, state in sorted(self._channels.items())
            if state.n_skipped
        }

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    #: Version tag of the serialized monitor state below.
    state_format: str = "repro.stream-state/1"

    def state_dict(self) -> Dict[str, object]:
        """Snapshot channel positions, events, and the shared clock.

        Per-channel online-detector state is captured as a deep copy of
        the detector's ``__dict__`` (the online detectors keep their
        running statistics in plain attributes); :meth:`load_state_dict`
        rebuilds each detector through the monitor's factory and
        restores those attributes, so the restored monitor continues the
        stream exactly where the snapshot left it.
        """
        return {
            "format": self.state_format,
            "channels": {
                cid: {
                    "detector_state": copy.deepcopy(state.detector.__dict__),
                    "threshold": state.threshold,
                    "recent_flags": list(state.recent_flags),
                    "last_seen": state.last_seen,
                    "n_skipped": state.n_skipped,
                }
                for cid, state in self._channels.items()
            },
            "events": list(self._events),
            "now": self._now,
            "stall_due": self._stall_due,
            "reported_stalled": sorted(self._reported_stalled),
        }

    def load_state_dict(self, state: Dict[str, object]) -> "StreamingSensorMonitor":
        """Restore monitor state captured by :meth:`state_dict`."""
        if not isinstance(state, dict) or "channels" not in state:
            raise ValueError("malformed streaming-monitor state")
        if state.get("format") != self.state_format:
            raise ValueError(
                f"streaming monitor cannot load state format "
                f"{state.get('format')!r} (expected {self.state_format!r})"
            )
        self._channels = {}
        for cid, entry in state["channels"].items():
            detector = self._factory()
            detector.__dict__.clear()
            detector.__dict__.update(copy.deepcopy(entry["detector_state"]))
            self._channels[cid] = _Channel(
                detector=detector,
                threshold=entry["threshold"],
                recent_flags=deque(entry["recent_flags"]),
                last_seen=entry["last_seen"],
                n_skipped=entry["n_skipped"],
            )
        self._events = list(state["events"])
        self._now = state["now"]
        self._stall_due = state["stall_due"]
        self._reported_stalled = set(state["reported_stalled"])
        return self

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[StreamEvent]:
        return list(self._events)

    def events_for(self, channel_id: str) -> List[StreamEvent]:
        return [e for e in self._events if e.channel_id == channel_id]

    def reconsider_support(self) -> List[StreamEvent]:
        """Re-evaluate support of all events post hoc.

        Streaming support is causal — a supporter that flags *after* the
        event is missed online.  This pass recomputes support with full
        hindsight (both directions of the tolerance window), which the
        batch pipeline gets for free.
        """
        # sorted: set iteration is hash-seeded; without it the flags
        # dict's insertion order would vary per process (DET103)
        flags: Mapping[str, List[float]] = {
            cid: [e.time for e in self._events if e.channel_id == cid]
            for cid in sorted({e.channel_id for e in self._events})
        }
        revised: List[StreamEvent] = []
        for event in self._events:
            corresponding = self._graph.corresponding(event.channel_id)
            counted = 0
            supporters = 0
            for other in corresponding:
                if other not in self._channels:
                    continue
                counted += 1
                if any(
                    abs(t - event.time) <= self.tolerance
                    for t in flags.get(other, ())
                ):
                    supporters += 1
            support = supporters / counted if counted else 0.0
            revised.append(
                StreamEvent(
                    channel_id=event.channel_id,
                    time=event.time,
                    value=event.value,
                    score=event.score,
                    support=support,
                    n_corresponding=counted,
                )
            )
        return revised
