"""Online per-sample detectors (constant memory, one update per sample).

Each detector implements ``update(x) -> score``: feed one sample, get its
outlierness immediately.  These are the streaming counterparts of the
batch phase-level detectors:

* :class:`OnlineZScore` — Welford-standardized deviation (additive
  outliers);
* :class:`OnlineEWMA` — deviation from an exponentially weighted level
  (drift-tolerant);
* :class:`CusumDetector` — two-sided CUSUM (level shifts / temporary
  changes);
* :class:`OnlineARDetector` — AR(p) one-step residual with recursive
  least squares (the streaming autoregressive model of Table-1 row 20).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

import numpy as np

from .online_stats import EWStats, RunningStats

__all__ = ["OnlineZScore", "OnlineEWMA", "CusumDetector", "OnlineARDetector"]


class OnlineZScore:
    """|z| of each sample against all history (Welford)."""

    def __init__(self, warmup: int = 10) -> None:
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.warmup = warmup
        self._stats = RunningStats()

    @property
    def n_skipped(self) -> int:
        """Non-finite samples ignored so far (degraded-stream visibility)."""
        return self._stats.n_skipped

    def update(self, x: float) -> float:
        if not math.isfinite(x):
            self._stats.update(x)  # counts the skip
            return 0.0
        score = 0.0
        if self._stats.n >= self.warmup:
            score = abs(self._stats.zscore(x))
        self._stats.update(x)
        return score


class OnlineEWMA:
    """|z| against an exponentially weighted level and scale."""

    def __init__(self, alpha: float = 0.05, warmup: int = 10) -> None:
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.warmup = warmup
        self._stats = EWStats(alpha)
        self._seen = 0

    @property
    def n_skipped(self) -> int:
        """Non-finite samples ignored so far (degraded-stream visibility)."""
        return self._stats.n_skipped

    def update(self, x: float) -> float:
        if not math.isfinite(x):
            self._stats.update(x)  # counts the skip
            return 0.0
        score = 0.0
        if self._seen >= self.warmup:
            score = abs(self._stats.zscore(x))
        self._stats.update(x)
        self._seen += 1
        return score


class CusumDetector:
    """Two-sided CUSUM on standardized residuals.

    ``drift`` is the slack per sample (in sigma units) the statistic
    forgives; the score is the larger of the positive/negative cumulative
    sums, which crosses its decision threshold quickly after a level shift.
    The default drift of 1.5 sigma is deliberately generous: production
    sensor signals are autocorrelated, and an IID-tuned drift (the textbook
    0.5) accumulates runs of same-signed residuals into false alarms.
    """

    def __init__(self, drift: float = 1.5, warmup: int = 20) -> None:
        if drift < 0:
            raise ValueError("drift must be >= 0")
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.drift = drift
        self.warmup = warmup
        self._stats = RunningStats()
        self._pos = 0.0
        self._neg = 0.0

    @property
    def n_skipped(self) -> int:
        """Non-finite samples ignored so far (degraded-stream visibility)."""
        return self._stats.n_skipped

    def update(self, x: float) -> float:
        if not math.isfinite(x):
            self._stats.update(x)  # counts the skip; chart state untouched
            return max(self._pos, self._neg)
        if self._stats.n < self.warmup:
            self._stats.update(x)
            return 0.0
        z = self._stats.zscore(x)
        self._pos = max(0.0, self._pos + z - self.drift)
        self._neg = max(0.0, self._neg - z - self.drift)
        # baseline keeps learning only while the chart is quiet, so the
        # post-shift samples do not get absorbed into "normal"
        if max(self._pos, self._neg) < 1.0:
            self._stats.update(x)
        return max(self._pos, self._neg)

    def reset(self) -> None:
        """Restart the cumulative sums (after an acknowledged shift)."""
        self._pos = 0.0
        self._neg = 0.0


class OnlineARDetector:
    """AR(p) one-step-ahead residual, coefficients via recursive least squares.

    RLS with forgetting factor ``lam`` adapts the AR model continuously;
    the score is the absolute prediction residual in units of the running
    residual scale — the streaming twin of
    :class:`repro.detectors.predictive.ARDetector`.
    """

    def __init__(self, order: int = 3, lam: float = 0.995,
                 warmup: int = 30, delta: float = 100.0) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if not 0.8 < lam <= 1.0:
            raise ValueError("lam must be in (0.8, 1]")
        if warmup < order + 2:
            raise ValueError("warmup must exceed order + 2")
        self.order = order
        self.lam = lam
        self.warmup = warmup
        self._history: Deque[float] = deque(maxlen=order)
        self._theta = np.zeros(order + 1)  # AR coefficients + intercept
        self._P = np.eye(order + 1) * delta
        self._residual_stats = EWStats(alpha=0.02)
        self._seen = 0
        self.n_skipped = 0

    def update(self, x: float) -> float:
        if not math.isfinite(x):
            self.n_skipped += 1
            return 0.0
        score = 0.0
        if len(self._history) == self.order:
            phi = np.concatenate([np.asarray(self._history)[::-1], [1.0]])
            prediction = float(self._theta @ phi)
            residual = x - prediction
            if self._seen >= self.warmup:
                scale = self._residual_stats.std
                floor = 1e-9 * max(1.0, abs(self._residual_stats.mean))
                score = abs(residual) / scale if scale > floor else 0.0
            # RLS update
            Pphi = self._P @ phi
            gain = Pphi / (self.lam + float(phi @ Pphi))
            self._theta = self._theta + gain * residual
            self._P = (self._P - np.outer(gain, Pphi)) / self.lam
            # the scale estimator must see neither the pre-convergence
            # transient (huge residuals while theta is still ~0) nor
            # outliers — both would inflate it for a long time
            converged = self._seen >= max(self.order + 5, self.warmup // 2)
            if converged and score < 4.0:
                self._residual_stats.update(residual)
        self._history.append(x)
        self._seen += 1
        return score
