"""Persistence: save and load plant datasets and report lists.

A downstream user wants to simulate once and analyze many times, or ship a
dataset to a colleague.  Plant datasets round-trip through a single
``.npz`` archive (signal arrays) + embedded JSON manifest (structure,
setup, CAQ, ground truth); reports export to JSON for dashboards.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import Dict, List

import numpy as np

from .atomic import write_atomic
from .core import HierarchicalOutlierReport, RunHealth
from .plant import (
    CAQResult,
    FaultEvent,
    FaultKind,
    JobRecord,
    LineRecord,
    MachineRecord,
    PhaseRecord,
    PlantDataset,
    SensorChannel,
    SensorSpec,
)
from .synthetic import OutlierType
from .timeseries import DiscreteSequence, TimeSeries

__all__ = [
    "save_plant",
    "load_plant",
    "reports_to_json",
    "reports_to_rows",
    "health_to_dict",
    "write_atomic",
]

_FORMAT_VERSION = 1


def _fault_to_dict(fault: FaultEvent) -> Dict:
    return {
        "kind": fault.kind.value,
        "machine_id": fault.machine_id,
        "job_index": fault.job_index,
        "phase_name": fault.phase_name,
        "redundancy_group": fault.redundancy_group,
        "sensor_id": fault.sensor_id,
        "onset": fault.onset,
        "outlier_type": fault.outlier_type.value if fault.outlier_type else None,
        "magnitude": fault.magnitude,
    }


def _fault_from_dict(d: Dict) -> FaultEvent:
    return FaultEvent(
        kind=FaultKind(d["kind"]),
        machine_id=d["machine_id"],
        job_index=d["job_index"],
        phase_name=d["phase_name"],
        redundancy_group=d["redundancy_group"],
        sensor_id=d["sensor_id"],
        onset=d["onset"],
        outlier_type=OutlierType(d["outlier_type"]) if d["outlier_type"] else None,
        magnitude=d["magnitude"],
    )


def save_plant(dataset: PlantDataset, path) -> pathlib.Path:
    """Serialize a plant dataset to one ``.npz`` archive."""
    path = pathlib.Path(path)
    arrays: Dict[str, np.ndarray] = {}
    manifest: Dict = {
        "format_version": _FORMAT_VERSION,
        "setup_keys": list(dataset.setup_keys),
        "caq_keys": list(dataset.caq_keys),
        "faults": [_fault_to_dict(f) for f in dataset.faults],
        "lines": [],
    }
    for li, line in enumerate(dataset.lines):
        line_entry: Dict = {"line_id": line.line_id, "machines": [], "environment": []}
        for kind, series in sorted(line.environment.items()):
            key = f"env/{li}/{kind}"
            arrays[key] = series.values
            line_entry["environment"].append(
                {"kind": kind, "key": key, "start": series.start,
                 "step": series.step, "name": series.name, "unit": series.unit}
            )
        for mi, machine in enumerate(line.machines):
            machine_entry: Dict = {
                "machine_id": machine.machine_id,
                "channels": [
                    {
                        "sensor_id": ch.sensor_id,
                        "kind": ch.spec.kind,
                        "unit": ch.spec.unit,
                        "redundancy_group": ch.spec.redundancy_group,
                        "noise_sigma": ch.spec.noise_sigma,
                        "step": ch.spec.step,
                    }
                    for ch in machine.channels
                ],
                "jobs": [],
            }
            for job in machine.jobs:
                job_entry: Dict = {
                    "job_index": job.job_index,
                    "start": job.start,
                    "setup": job.setup,
                    "caq": {
                        "measurements": job.caq.measurements,
                        "passed": job.caq.passed,
                    },
                    "phases": [],
                }
                for pi, phase in enumerate(job.phases):
                    phase_entry: Dict = {
                        "name": phase.name,
                        "start": phase.start,
                        "events": list(phase.events.symbols),
                        "event_alphabet": list(phase.events.alphabet),
                        "series": [],
                    }
                    for sensor_id, series in sorted(phase.series.items()):
                        key = f"s/{li}/{mi}/{job.job_index}/{pi}/{sensor_id.rsplit('/', 1)[-1]}"
                        arrays[key] = series.values
                        phase_entry["series"].append(
                            {"sensor_id": sensor_id, "key": key,
                             "start": series.start, "step": series.step,
                             "unit": series.unit}
                        )
                    job_entry["phases"].append(phase_entry)
                machine_entry["jobs"].append(job_entry)
            line_entry["machines"].append(machine_entry)
        manifest["lines"].append(line_entry)
    if dataset.dirty_jobs():
        # ingested-but-unrefreshed jobs survive the round trip so a
        # restored pipeline can still refresh() exactly the right tail
        manifest["dirty_jobs"] = [
            [machine_id, job_index] for machine_id, job_index in dataset.dirty_jobs()
        ]
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    target = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    write_atomic(target, buffer.getvalue())
    return target


def load_plant(path) -> PlantDataset:
    """Load a plant dataset saved with :func:`save_plant`."""
    with np.load(pathlib.Path(path)) as archive:
        manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported plant archive version {manifest.get('format_version')}"
            )
        lines: List[LineRecord] = []
        for line_entry in manifest["lines"]:
            environment = {}
            for env in line_entry["environment"]:
                environment[env["kind"]] = TimeSeries(
                    archive[env["key"]], start=env["start"], step=env["step"],
                    name=env["name"], unit=env["unit"],
                )
            machines: List[MachineRecord] = []
            for machine_entry in line_entry["machines"]:
                channels = [
                    SensorChannel(
                        sensor_id=c["sensor_id"],
                        machine_id=machine_entry["machine_id"],
                        spec=SensorSpec(
                            kind=c["kind"], unit=c["unit"],
                            redundancy_group=c["redundancy_group"],
                            noise_sigma=c["noise_sigma"], step=c["step"],
                        ),
                    )
                    for c in machine_entry["channels"]
                ]
                machine = MachineRecord(
                    machine_id=machine_entry["machine_id"],
                    line_id=line_entry["line_id"],
                    channels=channels,
                )
                for job_entry in machine_entry["jobs"]:
                    phases: List[PhaseRecord] = []
                    for phase_entry in job_entry["phases"]:
                        series = {
                            s["sensor_id"]: TimeSeries(
                                archive[s["key"]], start=s["start"],
                                step=s["step"], name=s["sensor_id"],
                                unit=s["unit"],
                            )
                            for s in phase_entry["series"]
                        }
                        phases.append(
                            PhaseRecord(
                                name=phase_entry["name"],
                                job_index=job_entry["job_index"],
                                machine_id=machine.machine_id,
                                start=phase_entry["start"],
                                series=series,
                                events=DiscreteSequence(
                                    tuple(phase_entry["events"]),
                                    alphabet=tuple(phase_entry["event_alphabet"]),
                                ),
                            )
                        )
                    machine.jobs.append(
                        JobRecord(
                            job_index=job_entry["job_index"],
                            machine_id=machine.machine_id,
                            start=job_entry["start"],
                            setup=dict(job_entry["setup"]),
                            phases=phases,
                            caq=CAQResult(
                                measurements=dict(job_entry["caq"]["measurements"]),
                                passed=job_entry["caq"]["passed"],
                            ),
                        )
                    )
                machines.append(machine)
            lines.append(LineRecord(line_entry["line_id"], machines, environment))
        dataset = PlantDataset(
            lines=lines,
            faults=[_fault_from_dict(f) for f in manifest["faults"]],
            setup_keys=tuple(manifest["setup_keys"]),
            caq_keys=tuple(manifest["caq_keys"]),
        )
        for machine_id, job_index in manifest.get("dirty_jobs", []):
            dataset._dirty_jobs.append((machine_id, int(job_index)))
        return dataset


def reports_to_rows(reports: List[HierarchicalOutlierReport]) -> List[Dict]:
    """Flatten reports into dashboard-friendly, JSON-safe dicts."""
    rows = []
    for r in reports:
        c = r.candidate
        rows.append(
            {
                "location": c.location,
                "level": int(c.level),
                "machine_id": c.machine_id,
                "job_index": None if c.job_index is None else int(c.job_index),
                "phase_name": c.phase_name,
                "sensor_id": c.sensor_id,
                "index": None if c.index is None else int(c.index),
                "global_score": int(r.global_score),
                "outlierness": float(r.outlierness),
                "support": float(r.support),
                "n_corresponding": int(r.n_corresponding),
                "supporters": list(r.supporters),
                "fused_score": float(r.fused_score),
                "measurement_warning": bool(r.measurement_warning),
                "confirmations": [
                    {
                        "level": int(conf.level),
                        "detected": bool(conf.detected),
                        "outlierness": float(conf.outlierness),
                    }
                    for conf in r.confirmations
                ],
            }
        )
    return rows


def health_to_dict(health: RunHealth) -> Dict:
    """JSON-safe form of a pipeline :class:`~repro.core.RunHealth` record."""
    return health.as_dict()


def reports_to_json(
    reports: List[HierarchicalOutlierReport],
    path=None,
    health: RunHealth = None,
    stats: Dict = None,
) -> str:
    """Serialize reports to JSON (optionally writing to ``path``).

    Passing the run's :class:`~repro.core.RunHealth` and/or the
    pipeline's nested ``stats()`` dict embeds a ``telemetry`` section
    (``telemetry.run_health`` and ``telemetry.stats``), so a dashboard
    consuming the export can tell a pristine run from one that survived
    on fallbacks and quarantines — and see the confirmation/support
    cache counters that earlier exports silently dropped.
    """
    doc: Dict = {"reports": reports_to_rows(reports)}
    telemetry: Dict = {}
    if health is not None:
        telemetry["run_health"] = health_to_dict(health)
    if stats is not None:
        telemetry["stats"] = stats
    if telemetry:
        doc["telemetry"] = telemetry
    payload = json.dumps(doc, indent=2)
    if path is not None:
        write_atomic(pathlib.Path(path), payload)
    return payload
