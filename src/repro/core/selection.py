"""ChooseAlgorithm — the per-level detector selection policy.

Algorithm 1 begins with ``algorithm := ChooseAlgorithm(startLevel)`` and
the summary adds that "the algorithm should be selected with respect to the
resolution best fitting to a production layer".  The policy here encodes
that: each level has a preference-ordered list of detector names whose
Table-1 capabilities match the level's data contract; the first applicable
entry wins.  Callers can override any level's preferences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..detectors import BaseDetector, DataShape, make_detector, get_detector
from .levels import ProductionLevel, contract_for

__all__ = ["AlgorithmSelector", "DEFAULT_PREFERENCES"]

#: Preference order per level, justified by the level's data shape:
#: * PHASE — high-resolution numeric series: prediction residuals localize
#:   point anomalies best, with the histogram deviants as fallback;
#: * JOB — one high-dimensional row per job, few rows: the kNN distance
#:   score stays reliable on small-n vector data where mixtures overfit;
#: * ENVIRONMENT — a slow ambient series: prediction residuals again, but
#:   tolerant variants first (the ambient cycle is strong);
#: * PRODUCTION_LINE — jobs-over-time vectors: distance and cluster
#:   structure across a whole line of jobs;
#: * PRODUCTION — a tiny KPI panel (one row per machine): only robust
#:   statistical scores remain meaningful.
DEFAULT_PREFERENCES: Dict[ProductionLevel, Sequence[str]] = {
    ProductionLevel.PHASE: ("ar", "deviants", "zscore"),
    ProductionLevel.JOB: ("knn", "em-gmm", "mad"),
    ProductionLevel.ENVIRONMENT: ("ar", "deviants", "mad"),
    ProductionLevel.PRODUCTION_LINE: ("knn", "single-linkage", "em-gmm"),
    ProductionLevel.PRODUCTION: ("mad", "knn", "zscore"),
}


class AlgorithmSelector:
    """Resolution-aware detector choice (the paper's ``ChooseAlgorithm``)."""

    def __init__(
        self,
        preferences: Optional[Dict[ProductionLevel, Sequence[str]]] = None,
    ) -> None:
        self._preferences: Dict[ProductionLevel, List[str]] = {
            level: list(names)
            for level, names in (preferences or DEFAULT_PREFERENCES).items()
        }
        for level in ProductionLevel:
            if level not in self._preferences:
                raise ValueError(f"no preferences configured for {level}")

    def preferences_for(self, level: ProductionLevel) -> List[str]:
        return list(self._preferences[level])

    def override(self, level: ProductionLevel, names: Sequence[str]) -> None:
        """Replace the preference list of one level."""
        if not names:
            raise ValueError("preference list must not be empty")
        self._preferences[level] = list(names)

    def choose(self, level: ProductionLevel) -> BaseDetector:
        """ChooseAlgorithm(level): first preference whose capabilities fit."""
        chain = self.fallback_chain(level, extend=False)
        if not chain:
            raise LookupError(
                f"no configured detector fits {level} (granularity "
                f"{contract_for(level).outlier_granularity}); "
                f"preferences: {self._preferences[level]}"
            )
        return make_detector(chain[0])

    #: terminal robust baselines appended to every fallback chain — cheap,
    #: parameter-light detectors that score POINTS, so a level whose whole
    #: preference list failed still gets a principled score
    TERMINAL_FALLBACKS: Sequence[str] = ("mad", "zscore")

    def fallback_chain(
        self, level: ProductionLevel, extend: bool = True
    ) -> List[str]:
        """Capability-fitting detector names for a level, in preference order.

        The resilience layer walks this chain when a detector fails in the
        sandbox: entry 0 is what :meth:`choose` returns, and each later
        entry is the next ``ChooseAlgorithm`` candidate.  With ``extend``
        (the default) the robust :data:`TERMINAL_FALLBACKS` are appended so
        the chain never ends on an exotic detector.
        """
        contract = contract_for(level)
        required: DataShape = contract.outlier_granularity
        chain: List[str] = []
        candidates = list(self._preferences[level])
        if extend:
            candidates.extend(
                name for name in self.TERMINAL_FALLBACKS if name not in candidates
            )
        for name in candidates:
            entry = get_detector(name)
            pts, ssq, tss = entry.capabilities()
            fits = (
                (required is DataShape.POINTS and pts)
                or (required is DataShape.SUBSEQUENCES and (ssq or pts))
                or (required is DataShape.SERIES and tss)
            )
            if fits:
                chain.append(name)
        return chain

    def describe(self) -> str:
        """A short table of the active policy, for reports."""
        lines = []
        for level in ProductionLevel:
            chosen = self.choose(level)
            prefs = ", ".join(self._preferences[level])
            lines.append(f"{str(level):22s} -> {chosen.name:14s} (prefs: {prefs})")
        return "\n".join(lines)
