"""Outlier records and the paper's result triple.

Algorithm 1 outputs ``<global score, outlierness, support>`` per outlier:
the global score counts the hierarchy levels confirming the outlier, the
outlierness is the significance reported by the level's detector, and the
support is the fraction of corresponding sensors agreeing at the same time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..synthetic import OutlierType
from .levels import ProductionLevel

__all__ = ["OutlierCandidate", "LevelConfirmation", "HierarchicalOutlierReport"]


@dataclass(frozen=True)
class OutlierCandidate:
    """One outlier as found by a detector at one level.

    Location fields are filled as far as the level defines them: a
    phase-level candidate carries machine/job/phase/sensor and the sample
    index; a production-level candidate only the machine.
    """

    level: ProductionLevel
    outlierness: float
    machine_id: str = ""
    job_index: Optional[int] = None
    phase_name: str = ""
    sensor_id: str = ""
    index: Optional[int] = None
    detector: str = ""
    outlier_type: Optional[OutlierType] = None

    @property
    def key(self) -> Tuple[int, str, Optional[int], str, str, Optional[int]]:
        """Canonical hashable identity of the candidate's location.

        Two candidates with equal keys name the same
        (level, machine, job, phase, sensor, sample) coordinate — the
        memoization granularity of the pipeline's confirmation/support
        caches.  Score and provenance fields (outlierness, detector,
        outlier_type) are deliberately excluded: they do not change *what*
        is being confirmed, only how it scored.
        """
        return (
            int(self.level),
            self.machine_id,
            self.job_index,
            self.phase_name,
            self.sensor_id,
            self.index,
        )

    @property
    def location(self) -> str:
        parts = [self.machine_id or "-"]
        if self.job_index is not None:
            parts.append(f"job{self.job_index}")
        if self.phase_name:
            parts.append(self.phase_name)
        if self.sensor_id:
            parts.append(self.sensor_id.rsplit("/", 1)[-1])
        if self.index is not None:
            parts.append(f"t={self.index}")
        return "/".join(parts)


@dataclass(frozen=True)
class LevelConfirmation:
    """Outcome of checking one hierarchy level for a candidate."""

    level: ProductionLevel
    detected: bool
    outlierness: float
    note: str = ""


@dataclass
class HierarchicalOutlierReport:
    """The Algorithm-1 triple plus full provenance.

    ``global_score`` is the number of confirming levels (start level
    included), ``outlierness`` the unified significance at the start level,
    ``support`` the corresponding-sensor agreement in [0, 1] (``NaN``-free:
    when no corresponding sensors exist, ``n_corresponding`` is 0 and
    ``support`` is 0.0 by convention).
    """

    candidate: OutlierCandidate
    global_score: int
    outlierness: float
    support: float
    n_corresponding: int = 0
    supporters: Tuple[str, ...] = ()
    confirmations: Tuple[LevelConfirmation, ...] = ()
    measurement_warning: bool = False
    warning_reason: str = ""
    fused_score: float = 0.0

    @property
    def triple(self) -> Tuple[int, float, float]:
        """The paper's result: <global score, outlierness, support>."""
        return (self.global_score, self.outlierness, self.support)

    @property
    def effective_support(self) -> float:
        """Support usable for ranking: neutral (0.5) without redundancy.

        The support value can only "reduce the probability of finding a
        measurement error" where corresponding sensors exist; a candidate
        without any redundancy is neither confirmed nor contradicted.
        """
        return self.support if self.n_corresponding > 0 else 0.5

    def confirmation_at(self, level: ProductionLevel) -> Optional[LevelConfirmation]:
        for c in self.confirmations:
            if c.level == level:
                return c
        return None

    def describe(self) -> str:
        """One-line report used by examples and benches."""
        g, o, s = self.triple
        warn = " [measurement-error warning]" if self.measurement_warning else ""
        return (
            f"{self.candidate.location:55s} global={g} outlierness={o:.3f} "
            f"support={s:.2f} ({self.n_corresponding} corresponding){warn}"
        )


def rank_reports(
    reports: Sequence["HierarchicalOutlierReport"],
    weights: Dict[str, float] | None = None,
) -> List["HierarchicalOutlierReport"]:
    """Sort reports by the fused hierarchical evidence, best first.

    The default ranking follows the paper's reading of the triple: more
    confirming levels beat raw outlierness, and support breaks ties while
    demoting unsupported candidates.
    """
    weights = weights or {"global": 1.0, "outlierness": 1.0, "support": 1.0}

    def key(report: HierarchicalOutlierReport) -> float:
        g = (report.global_score - 1) / 4.0
        return (
            weights["global"] * g
            + weights["outlierness"] * min(1.0, report.outlierness)
            + weights["support"] * report.effective_support
        )

    return sorted(reports, key=key, reverse=True)
