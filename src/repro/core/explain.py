"""Human-readable explanations of hierarchical outlier reports.

The paper's aim is "a more transparent production": the triple exists so
an operator can see *why* an outlier matters.  :func:`explain_report`
renders one report into that narrative — which level found it, which
levels confirmed it, which corresponding sensors supported it, and what
the verdict means.
"""

from __future__ import annotations

from typing import List, Optional

from ..synthetic import OutlierType
from .levels import ProductionLevel
from .outlier import HierarchicalOutlierReport
from .types import TypeClassification

__all__ = ["explain_report"]


def _verdict(report: HierarchicalOutlierReport) -> str:
    if report.measurement_warning:
        return (
            "VERDICT: suspected wrong measurement — the outlier is visible "
            "at a high level but leaves no trace below it."
        )
    if report.n_corresponding > 0 and report.support == 0.0:
        return (
            "VERDICT: suspected measurement error — none of the "
            "corresponding sensors saw anything at the same time."
        )
    if report.global_score >= 3 or (
        report.global_score >= 2 and report.support >= 0.5
    ):
        return (
            "VERDICT: likely real process anomaly — multiple independent "
            "pieces of evidence agree."
        )
    return (
        "VERDICT: isolated finding — noticed at one level only; monitor "
        "before acting."
    )


def explain_report(
    report: HierarchicalOutlierReport,
    classification: Optional[TypeClassification] = None,
) -> str:
    """Render one report as an operator-facing explanation."""
    c = report.candidate
    lines: List[str] = []
    lines.append(f"Outlier at {c.location}")
    lines.append(
        f"  noticed at the {c.level.label} level"
        + (f" by the '{c.detector}' detector" if c.detector else "")
        + f" with unified outlierness {report.outlierness:.2f}."
    )

    # global score narrative
    confirmed = [conf for conf in report.confirmations if conf.detected]
    denied = [conf for conf in report.confirmations if not conf.detected]
    lines.append(
        f"  global score {report.global_score}/5: the outlier is visible at "
        f"{report.global_score} production level(s)."
    )
    for conf in confirmed:
        note = f" ({conf.note})" if conf.note else ""
        lines.append(f"    + confirmed at the {conf.level.label} level{note}")
    for conf in denied:
        lines.append(f"    - not seen at the {conf.level.label} level")

    # support narrative
    if report.n_corresponding == 0:
        lines.append(
            "  support: no corresponding sensors exist for this channel, so "
            "redundancy gives no verdict."
        )
    else:
        who = (
            ", ".join(s.rsplit("/", 1)[-1] for s in report.supporters)
            if report.supporters
            else "none"
        )
        lines.append(
            f"  support {report.support:.2f}: {len(report.supporters)} of "
            f"{report.n_corresponding} corresponding sensor(s) agree "
            f"(supporters: {who})."
        )

    if classification is not None:
        lines.append(
            f"  shape: classified as a {classification.outlier_type.value} "
            f"outlier (confidence {classification.confidence:.2f}, "
            f"magnitude {classification.magnitude:+.2f})."
        )
        if classification.outlier_type is OutlierType.LEVEL_SHIFT:
            lines.append(
                "    a level shift persists until repaired — check for a "
                "configuration or hardware change."
            )
        elif classification.outlier_type is OutlierType.TEMPORARY_CHANGE:
            lines.append(
                "    a temporary change decays on its own — look for a "
                "transient disturbance around the onset."
            )

    lines.append("  " + _verdict(report))
    return "\n".join(lines)
