"""Support computation over the corresponding-sensor graph.

"Sensors measuring the same information allow for the calculation of a
support value for outliers.  Hereby, an outlier is more valuable if it is
also found in the supporting sensor at the same time" (Section 1).  The
correspondence structure is a graph: redundant sensors of one machine are
fully connected, and cross-level correspondences (the paper's example: the
room-temperature measurement supporting a chamber-temperature sensor) are
explicit edges too.

Algorithm 1 computes ``support /= Number of Corresponding Sensors`` —
implemented verbatim in :meth:`SupportCalculator.support_for`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..plant import PlantDataset

__all__ = [
    "CorrespondenceGraph",
    "SupportCalculator",
    "SupportResult",
    "window_bounds",
]


def window_bounds(
    time: float, tolerance: float, start: float, step: float, n: int
) -> Tuple[int, int]:
    """Half-open ``[lo, hi)`` sample bounds of ``time ± tolerance`` on a trace.

    The one windowing rule shared by the support loop and the environment
    confirmation: the lower bound *floors* and the upper bound *ceils*
    (plain ``int()`` truncates toward zero, which rounds the lower bound
    **up** for times before the trace start and silently shrinks the
    window).  Degenerate traces — ``step <= 0`` or non-finite, as a
    single-sample or corrupt channel can produce — select the whole trace
    instead of raising :class:`ZeroDivisionError`.
    """
    if n <= 0:
        return 0, 0
    if step <= 0 or not math.isfinite(step):
        return 0, n
    lo = int(math.floor((time - tolerance - start) / step))
    hi = int(math.ceil((time + tolerance - start) / step)) + 1
    return max(0, lo), min(n, hi)


class CorrespondenceGraph:
    """Undirected graph whose edges link corresponding sensors.

    Node ids are sensor ids (phase-level channels) or environment channel
    ids of the form ``"<line_id>/env/<kind>"``.
    """

    #: environment kinds considered to correspond to a sensor kind
    CROSS_LEVEL: Dict[str, Tuple[str, ...]] = {"chamber_temp": ("room_temp",)}

    def __init__(self) -> None:
        self._graph = nx.Graph()

    @classmethod
    def from_plant(cls, dataset: PlantDataset) -> "CorrespondenceGraph":
        """Build redundancy-group cliques plus cross-level environment edges."""
        graph = cls()
        for line in dataset.lines:
            env_nodes = {
                kind: f"{line.line_id}/env/{kind}" for kind in line.environment
            }
            for node in env_nodes.values():
                graph._graph.add_node(node, kind="environment")
            for machine in line.machines:
                for group, channels in machine.redundancy_groups().items():
                    ids = [ch.sensor_id for ch in channels]
                    for sid in ids:
                        graph._graph.add_node(sid, kind="sensor")
                    for i, a in enumerate(ids):
                        for b in ids[i + 1 :]:
                            graph._graph.add_edge(a, b, relation="redundant")
                    sensor_kind = channels[0].spec.kind
                    for env_kind in cls.CROSS_LEVEL.get(sensor_kind, ()):
                        env_node = env_nodes.get(env_kind)
                        if env_node is not None:
                            for sid in ids:
                                graph._graph.add_edge(
                                    sid, env_node, relation="cross-level"
                                )
        return graph

    def corresponding(self, sensor_id: str) -> List[str]:
        """All sensors/channels corresponding to the given one."""
        if sensor_id not in self._graph:
            return []
        return sorted(self._graph.neighbors(sensor_id))

    def add_correspondence(self, a: str, b: str, relation: str = "manual") -> None:
        self._graph.add_edge(a, b, relation=relation)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def __contains__(self, node: str) -> bool:
        return node in self._graph


@dataclass(frozen=True)
class SupportResult:
    """Outcome of the Algorithm-1 support loop for one outlier."""

    support: float
    n_corresponding: int
    supporters: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.n_corresponding and not 0.0 <= self.support <= 1.0:
            raise ValueError(f"support {self.support} outside [0, 1]")


class SupportCalculator:
    """Counts corresponding sensors that agree with an outlier in time.

    ``score_lookup(channel_id, time) -> (scores, threshold, start, step)``
    supplies the channel's outlierness trace covering ``time`` (or None when
    the channel has no scores there); a corresponding sensor *supports* the
    outlier when its score exceeds its threshold within ``tolerance``
    seconds of the outlier's time.
    """

    def __init__(
        self,
        graph: CorrespondenceGraph,
        score_lookup: Callable[[str, float], Optional[Tuple[np.ndarray, float, float, float]]],
        tolerance: float = 8.0,
        excluded: Iterable[str] = (),
    ) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self._graph = graph
        self._lookup = score_lookup
        self.tolerance = tolerance
        #: quarantined channels: removed from the divisor entirely, so a
        #: dead sensor no longer votes "no support" against a real fault
        self.excluded = frozenset(excluded)

    def _supports(self, channel_id: str, time: float) -> Optional[bool]:
        entry = self._lookup(channel_id, time)
        if entry is None:
            return None
        scores, threshold, start, step = entry
        n = len(scores)
        if n == 0:
            return None
        lo, hi = window_bounds(time, self.tolerance, start, step, n)
        if hi <= lo:
            return False
        return bool(np.any(scores[lo:hi] >= threshold))

    def support_for(self, sensor_id: str, time: float) -> SupportResult:
        """Algorithm 1's inner loop for one outlier at one sensor."""
        corresponding = self._graph.corresponding(sensor_id)
        supporters: List[str] = []
        counted = 0
        for other in corresponding:
            if other in self.excluded:
                continue  # quarantined: renormalize the divisor without it
            verdict = self._supports(other, time)
            if verdict is None:
                continue  # channel has no scores; it cannot vote
            counted += 1
            if verdict:
                supporters.append(other)
        support = len(supporters) / counted if counted else 0.0
        return SupportResult(
            support=support,
            n_corresponding=counted,
            supporters=tuple(supporters),
        )
