"""Zero-copy shared-memory transport for process-executor task payloads.

The process executor ships every task across a pickle boundary.  Trace
payloads are almost entirely numpy arrays, so pickling re-serializes the
same float64 samples per task and pushes them through a pipe.  This
module publishes those arrays **once** into a ``multiprocessing``
shared-memory block and replaces them in the payload with tiny
``(dtype, shape, offset)`` descriptors; workers attach the block, read
the samples straight out of ``/dev/shm``, and only the descriptors ever
cross the pickle boundary.

Lifecycle (DESIGN §12):

* the pipeline builds one :class:`ShmArena` per engine run (process
  executor only) and disposes it in the same ``finally`` that joins the
  pool — the arena never outlives its :class:`~.parallel.ParallelEngine`
  run;
* block names are deterministic (``repro_shm_<pid>_<seq>``), so a run
  can be correlated with its segments while debugging;
* every attach — creator and workers alike — registers the block with
  the ``multiprocessing.resource_tracker``.  Under the fork start method
  the tracker process is shared, so if the whole process tree dies by
  SIGKILL the tracker sees EOF on its pipe and unlinks the segments:
  no leaked ``/dev/shm`` entries even on a crash (the PR-7 chaos suite
  asserts this).

This is the ONLY module allowed to construct ``SharedMemory`` objects
(repro-lint HYG004), mirroring the single-pool-construction-site rule
DET005 — lifecycle bugs stay findable in one file.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..timeseries.series import TimeSeries

__all__ = ["ArrayRef", "SeriesRef", "ShmPayload", "ShmArena", "resolve_payload"]

#: Array offsets are aligned so every decoded array starts on a cache line.
_ALIGN = 64

#: Monotonic arena sequence for deterministic block naming (main-process
#: only: arenas are created by the pipeline before any worker runs).
_ARENA_SEQ = itertools.count()


@dataclass(frozen=True)
class ArrayRef:
    """Descriptor of one ndarray stored inside an arena block."""

    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class SeriesRef:
    """A :class:`TimeSeries` whose sample array lives in the arena."""

    values: ArrayRef
    start: float
    step: float
    name: str
    unit: str


@dataclass(frozen=True)
class ShmPayload:
    """A task payload whose array leaves were swapped for descriptors.

    ``shared_bytes`` is what the task reads from the block — the bytes
    that did *not* cross the pickle boundary.
    """

    block: str
    data: object
    shared_bytes: int


def _collect_arrays(obj: object, out: Dict[int, np.ndarray]) -> None:
    """First pass: gather every distinct array leaf (identity-deduped)."""
    if isinstance(obj, np.ndarray):
        out.setdefault(id(obj), obj)
    elif isinstance(obj, TimeSeries):
        out.setdefault(id(obj.values), obj.values)
    elif isinstance(obj, (tuple, list)):
        for item in obj:
            _collect_arrays(item, out)
    elif isinstance(obj, dict):
        for item in obj.values():
            _collect_arrays(item, out)


def _encode(obj: object, refs: Dict[int, ArrayRef], seen: List[ArrayRef]) -> object:
    """Second pass: rebuild the payload tree with descriptor leaves."""
    if isinstance(obj, np.ndarray):
        ref = refs[id(obj)]
        seen.append(ref)
        return ref
    if isinstance(obj, TimeSeries):
        ref = refs[id(obj.values)]
        seen.append(ref)
        return SeriesRef(
            values=ref, start=obj.start, step=obj.step, name=obj.name, unit=obj.unit
        )
    if isinstance(obj, tuple):
        return tuple(_encode(item, refs, seen) for item in obj)
    if isinstance(obj, list):
        return [_encode(item, refs, seen) for item in obj]
    if isinstance(obj, dict):
        return {key: _encode(item, refs, seen) for key, item in obj.items()}
    return obj


def _read_array(ref: ArrayRef, buf: memoryview) -> np.ndarray:
    count = int(np.prod(ref.shape, dtype=np.int64)) if ref.shape else 1
    if count == 0:
        return np.empty(ref.shape, dtype=np.dtype(ref.dtype))
    flat = np.frombuffer(buf, dtype=np.dtype(ref.dtype), count=count, offset=ref.offset)
    # copy out: the result must stay valid after the mapping is closed
    return flat.reshape(ref.shape).copy()


def _decode(obj: object, buf: memoryview) -> object:
    if isinstance(obj, ArrayRef):
        return _read_array(obj, buf)
    if isinstance(obj, SeriesRef):
        return TimeSeries(
            values=_read_array(obj.values, buf),
            start=obj.start,
            step=obj.step,
            name=obj.name,
            unit=obj.unit,
        )
    if isinstance(obj, tuple):
        return tuple(_decode(item, buf) for item in obj)
    if isinstance(obj, list):
        return [_decode(item, buf) for item in obj]
    if isinstance(obj, dict):
        return {key: _decode(item, buf) for key, item in obj.items()}
    return obj


class ShmArena:
    """One published shared-memory block holding a task graph's arrays.

    Built by :meth:`publish`; freed by :meth:`dispose`.  The creator owns
    unlinking; workers only ever attach read-mostly and close.
    """

    def __init__(
        self,
        block: Optional[shared_memory.SharedMemory],
        total_bytes: int,
        encode_seconds: float,
    ) -> None:
        self._block = block
        self.total_bytes = total_bytes
        self.encode_seconds = encode_seconds

    @property
    def block_name(self) -> str:
        return self._block.name if self._block is not None else ""

    @classmethod
    def publish(
        cls, payloads: Dict[str, object]
    ) -> Tuple["ShmArena", Dict[str, object]]:
        """Pack every array leaf of ``payloads`` into one shared block.

        Returns ``(arena, encoded)`` where ``encoded`` maps the same keys
        to :class:`ShmPayload` trees (payloads without array leaves pass
        through untouched, so decoding stays a no-op for them).
        """
        started = time.perf_counter()
        arrays: Dict[int, np.ndarray] = {}
        for payload in payloads.values():
            _collect_arrays(payload, arrays)
        if not arrays:
            return cls(None, 0, time.perf_counter() - started), dict(payloads)

        offsets: Dict[int, int] = {}
        cursor = 0
        contiguous: Dict[int, np.ndarray] = {}
        for key, arr in arrays.items():
            contiguous[key] = np.ascontiguousarray(arr)
            offsets[key] = cursor
            cursor += contiguous[key].nbytes
            cursor += (-cursor) % _ALIGN
        block = shared_memory.SharedMemory(
            create=True,
            size=max(1, cursor),
            name=f"repro_shm_{os.getpid()}_{next(_ARENA_SEQ)}",
        )
        refs: Dict[int, ArrayRef] = {}
        for key, arr in contiguous.items():
            ref = ArrayRef(
                dtype=arr.dtype.str,
                shape=tuple(arr.shape),
                offset=offsets[key],
                nbytes=int(arr.nbytes),
            )
            refs[key] = ref
            if arr.nbytes:
                dest = np.frombuffer(
                    block.buf, dtype=arr.dtype, count=arr.size, offset=ref.offset
                )
                dest[:] = arr.ravel()
        encoded: Dict[str, object] = {}
        for key, payload in payloads.items():
            seen: List[ArrayRef] = []
            data = _encode(payload, refs, seen)
            if seen:
                encoded[key] = ShmPayload(
                    block=block.name,
                    data=data,
                    shared_bytes=int(sum(ref.nbytes for ref in seen)),
                )
            else:
                encoded[key] = payload
        return cls(block, cursor, time.perf_counter() - started), encoded

    def dispose(self) -> None:
        """Close and unlink the block (idempotent).

        Runs in the same ``finally`` as the engine's pool shutdown; the
        resource tracker keeps the SIGKILL path covered.
        """
        if self._block is None:
            return
        block, self._block = self._block, None
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # already reaped (tracker or chaos kill)
            pass


def resolve_payload(payload: object) -> Tuple[object, float, int]:
    """Worker-side decode: rebuild a :class:`ShmPayload` into live arrays.

    Returns ``(payload, decode_seconds, shared_bytes)``.  Plain payloads
    (serial/thread executors, or shm transport off) pass through with
    zero cost.  The attachment is per-task — opened, read, closed — so no
    worker-global state survives between tasks (DET101 stays happy).
    """
    if not isinstance(payload, ShmPayload):
        return payload, 0.0, 0
    started = time.perf_counter()
    block = shared_memory.SharedMemory(name=payload.block)
    try:
        data = _decode(payload.data, block.buf)
    finally:
        block.close()
    return data, time.perf_counter() - started, payload.shared_bytes
