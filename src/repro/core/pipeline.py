"""End-to-end hierarchical detection over a simulated plant run.

:class:`HierarchicalDetectionPipeline` wires everything together: the
per-level detectors chosen by :class:`~repro.core.selection.AlgorithmSelector`
score every level of a :class:`~repro.plant.PlantDataset`, the
correspondence graph feeds the support computation, and Algorithm 1 turns
phase-level candidates into ranked ⟨global score, outlierness, support⟩
reports.  A *flat* single-level baseline (outlierness only, no hierarchy)
is exposed for the alg1 benchmark.

The context is the Algorithm-1 hot path, so it is built to be queried
repeatedly: per-level flag/score indexes (machine→line map, job interval
index, sorted per-channel trace index, phase-candidate indexes) are
precomputed once, and ``confirm`` / ``support`` / ``find_candidates`` are
memoized on the candidate's canonical :attr:`~repro.core.OutlierCandidate.key`
(toggle with :attr:`PipelineConfig.enable_cache`; counters via
:meth:`PlantHierarchyContext.stats`).
"""

from __future__ import annotations

import math
import warnings
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..detectors import make_detector
from ..obs import Telemetry
from ..obs.metrics import UNIT_BUCKETS
from ..plant import LineRecord, PlantDataset
from ..timeseries import TimeSeries
from .algorithm import HierarchyContext, find_hierarchical_outliers
from .levels import ProductionLevel
from .outlier import (
    HierarchicalOutlierReport,
    LevelConfirmation,
    OutlierCandidate,
    rank_reports,
)
from .resilience import (
    DetectorSandbox,
    FallbackEvent,
    QualityPolicy,
    RunHealth,
    SandboxOutcome,
    SandboxPolicy,
    assess_series,
    repair_series,
    robust_fallback_scores,
    robust_matrix_scores,
)
from .scores import unify_rank
from .selection import AlgorithmSelector
from .support import CorrespondenceGraph, SupportCalculator, SupportResult, window_bounds

__all__ = [
    "PipelineConfig",
    "PipelineStats",
    "PlantHierarchyContext",
    "HierarchicalDetectionPipeline",
    "STATS_SCHEMA",
]

#: Version tag of the nested dict returned by ``stats()`` (see
#: docs/OBSERVABILITY.md for the full schema).
STATS_SCHEMA = "repro.stats/2"


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of the plant pipeline (all robust-scale units)."""

    phase_sigma: float = 6.0  # MAD multiplier flagging phase-trace samples
    env_sigma: float = 5.0
    vector_sigma: float = 2.0  # job / line / production flags
    support_tolerance: float = 8.0
    fusion_strategy: str = "weighted"
    max_candidates_per_trace: int = 3
    candidate_gap: int = 3  # samples merging consecutive flagged runs
    line_history: int = 5  # jobs of temporal context at the line level
    enable_cache: bool = True  # memoize confirm/support/candidate lookups
    enable_telemetry: bool = True  # spans + metrics + structured logs
    gate_enabled: bool = True  # data-quality gate + trace repair/quarantine
    quality: QualityPolicy = QualityPolicy()  # gate thresholds
    sandbox: SandboxPolicy = SandboxPolicy()  # detector budget/retry policy


@dataclass
class PipelineStats:
    """Call/hit counters of the context's memoization layer.

    A *miss* is an actual recomputation; ``calls - hits == misses``, so a
    caller that re-runs Algorithm 1 N times over an unchanged context
    should see ``confirm_calls ≈ N × confirm_misses``.
    """

    confirm_calls: int = 0
    confirm_hits: int = 0
    support_calls: int = 0
    support_hits: int = 0
    candidate_time_calls: int = 0
    candidate_time_hits: int = 0
    find_candidates_calls: int = 0
    find_candidates_hits: int = 0

    @property
    def confirm_misses(self) -> int:
        return self.confirm_calls - self.confirm_hits

    @property
    def support_misses(self) -> int:
        return self.support_calls - self.support_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "confirm_calls": self.confirm_calls,
            "confirm_hits": self.confirm_hits,
            "confirm_misses": self.confirm_misses,
            "support_calls": self.support_calls,
            "support_hits": self.support_hits,
            "support_misses": self.support_misses,
            "candidate_time_calls": self.candidate_time_calls,
            "candidate_time_hits": self.candidate_time_hits,
            "find_candidates_calls": self.find_candidates_calls,
            "find_candidates_hits": self.find_candidates_hits,
        }

    def as_nested(self) -> Dict[str, Dict[str, int]]:
        """The ``cache`` block of the :data:`STATS_SCHEMA` stats dict:
        one ``{"calls", "hits", "misses"}`` entry per memo table."""
        def entry(calls: int, hits: int) -> Dict[str, int]:
            return {"calls": calls, "hits": hits, "misses": calls - hits}

        return {
            "confirm": entry(self.confirm_calls, self.confirm_hits),
            "support": entry(self.support_calls, self.support_hits),
            "candidate_time": entry(
                self.candidate_time_calls, self.candidate_time_hits
            ),
            "find_candidates": entry(
                self.find_candidates_calls, self.find_candidates_hits
            ),
        }


@dataclass
class _Trace:
    """Outlierness trace of one channel over one contiguous time span."""

    channel_id: str
    start: float
    step: float
    scores: np.ndarray
    threshold: float

    @property
    def end(self) -> float:
        return self.start + len(self.scores) * self.step

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


def _robust_standardize(X: np.ndarray) -> np.ndarray:
    """Per-column median/MAD scaling so no raw unit dominates distances."""
    med = np.median(X, axis=0)
    mad = np.median(np.abs(X - med), axis=0) * 1.4826
    mad[mad <= 1e-12] = 1.0
    return (X - med) / mad


def _robust_threshold(scores: np.ndarray, sigma: float) -> float:
    finite = scores[np.isfinite(scores)]
    if finite.size == 0:
        return math.inf
    med = float(np.median(finite))
    mad = float(np.median(np.abs(finite - med))) * 1.4826
    if mad <= 1e-12:
        mad = float(finite.std()) or 1.0
    return med + sigma * mad


def _peak_indices(scores: np.ndarray, threshold: float, gap: int,
                  max_peaks: int) -> List[int]:
    """Argmax of every flagged run (runs closer than ``gap`` merge)."""
    above = np.where(scores >= threshold)[0]
    if above.size == 0:
        return []
    peaks: List[Tuple[float, int]] = []
    run_start = above[0]
    prev = above[0]
    for idx in above[1:]:
        if idx - prev > gap:
            segment = scores[run_start : prev + 1]
            peaks.append((float(segment.max()), run_start + int(segment.argmax())))
            run_start = idx
        prev = idx
    segment = scores[run_start : prev + 1]
    peaks.append((float(segment.max()), run_start + int(segment.argmax())))
    peaks.sort(reverse=True)
    return [idx for __, idx in peaks[:max_peaks]]


class PlantHierarchyContext(HierarchyContext):
    """Hierarchy oracle over one plant dataset (see module docstring)."""

    def __init__(
        self,
        dataset: PlantDataset,
        selector: Optional[AlgorithmSelector] = None,
        config: Optional[PipelineConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.dataset = dataset
        self.selector = selector or AlgorithmSelector()
        self.config = config or PipelineConfig()
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=self.config.enable_telemetry)
        )
        self._init_instruments()
        # deferred detector observations: the per-call hot path appends a
        # tuple here and publish_stats() folds the batch into the registry
        self._pending_detector_obs: List[Tuple[str, str, bool, float]] = []
        self.health = RunHealth()
        self._sandbox = DetectorSandbox(self.config.sandbox)
        self._graph = CorrespondenceGraph.from_plant(dataset)
        self._traces: Dict[str, List[_Trace]] = {}
        self._phase_candidates: List[OutlierCandidate] = []
        tracer = self.telemetry.tracer
        with tracer.span("pipeline.build"):
            with tracer.span("score.PHASE", level="PHASE"):
                self._score_phase_level()
            with tracer.span("score.ENVIRONMENT", level="ENVIRONMENT"):
                self._score_env_level()
            with tracer.span("score.JOB", level="JOB"):
                self._score_job_level()
            with tracer.span("score.PRODUCTION_LINE", level="PRODUCTION_LINE"):
                self._score_line_level()
            with tracer.span("score.PRODUCTION", level="PRODUCTION"):
                self._score_production_level()
            with tracer.span("pipeline.index"):
                self._flag_dead_channels()
                self._build_indexes()
        self._support_calc = SupportCalculator(
            self._graph,
            self._lookup_trace,
            tolerance=self.config.support_tolerance,
            # renormalized divisor: fully-quarantined channels do not vote
            excluded=self.health.dead_channels,
        )
        self._cache_enabled = bool(self.config.enable_cache)
        self._stats = PipelineStats()
        self._confirm_cache: Dict[Tuple, LevelConfirmation] = {}
        self._support_cache: Dict[Tuple, SupportResult] = {}
        self._candidate_time_cache: Dict[Tuple, Optional[float]] = {}
        self._candidates_cache: Dict[ProductionLevel, List[OutlierCandidate]] = {}

    def _build_indexes(self) -> None:
        """Precompute the lookup structures behind ``confirm``/``support``.

        Everything here is a pure function of the scored dataset, so it is
        built once and shared by cached and cache-disabled contexts alike:
        only the per-candidate memoization is optional.
        """
        # line / machine resolution: O(1) dict hits instead of line scans
        self._line_by_id = {line.line_id: line for line in self.dataset.lines}
        self._machine_line = {
            m.machine_id: line
            for line in self.dataset.lines
            for m in line.machines
        }
        # per-line job interval index, sorted by start with a running max
        # end: bisect + short backward scan finds every job covering a time
        self._job_intervals: Dict[str, Tuple[List[float], List[float], List]] = {}
        for line in self.dataset.lines:
            spans = self.dataset.job_intervals(line.line_id)
            starts = [s[0] for s in spans]
            run_max_end: List[float] = []
            peak = -math.inf
            for __, end, __, __ in spans:
                peak = max(peak, end)
                run_max_end.append(peak)
            self._job_intervals[line.line_id] = (starts, run_max_end, spans)
        # per-channel traces sorted by start so one bisect finds the cover
        self._trace_starts: Dict[str, List[float]] = {}
        for channel_id, traces in self._traces.items():
            traces.sort(key=lambda t: t.start)
            self._trace_starts[channel_id] = [t.start for t in traces]
        # per-trace robust stats for the environment confirmation
        self._trace_stats: Dict[Tuple[str, float], Tuple[float, float]] = {}
        # phase candidates grouped by machine and (machine, job), plus the
        # sorted outlierness array _confirm_phase previously rebuilt per call
        self._phase_by_machine: Dict[str, List[OutlierCandidate]] = {}
        self._phase_by_machine_job: Dict[Tuple[str, Optional[int]], List[OutlierCandidate]] = {}
        for c in self._phase_candidates:
            self._phase_by_machine.setdefault(c.machine_id, []).append(c)
            self._phase_by_machine_job.setdefault(
                (c.machine_id, c.job_index), []
            ).append(c)
        self._phase_scores_sorted = np.sort(
            np.array([c.outlierness for c in self._phase_candidates], dtype=float)
        )

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def _init_instruments(self) -> None:
        """Register this run's metric instruments (no-ops when disabled)."""
        m = self.telemetry.metrics
        self._m_detector_calls = m.counter(
            "repro_detector_calls_total",
            "Sandboxed detector invocations by level, detector, and outcome.",
            labelnames=("level", "detector", "outcome"),
        )
        self._m_detector_latency = m.histogram(
            "repro_detector_latency_seconds",
            "Wall-clock latency of sandboxed detector calls.",
            labelnames=("level",),
        )
        self._m_fallbacks = m.counter(
            "repro_fallbacks_total",
            "Detector failures survived by falling back to the next choice.",
            labelnames=("level",),
        )
        self._m_quarantines = m.counter(
            "repro_quarantines_total",
            "Traces (scope=trace) or whole channels (scope=channel) pulled "
            "from scoring by the data-quality gate.",
            labelnames=("scope",),
        )
        self._m_candidates = m.counter(
            "repro_candidates_total",
            "Outlier candidates found per hierarchy level.",
            labelnames=("level",),
        )
        self._m_confirmations = m.counter(
            "repro_confirmations_total",
            "Cross-level confirmation computations by level and outcome.",
            labelnames=("level", "detected"),
        )
        self._m_support = m.histogram(
            "repro_support",
            "Distribution of computed Algorithm-1 support values.",
            buckets=UNIT_BUCKETS,
        )

    def stats(self) -> Dict[str, object]:
        """The run's telemetry counters as one nested, documented dict.

        Schema (:data:`STATS_SCHEMA`, documented in docs/OBSERVABILITY.md):
        ``{"schema", "cache": {<memo table>: {"calls", "hits", "misses"}},
        "health": {"degraded", "fallbacks", "quarantines", "dead_channels",
        "warnings", "degraded_levels"}}``.  This is the single source the
        metrics registry consumes (:meth:`publish_stats`) and the
        ``telemetry`` block of the JSON report export.
        """
        health = self.health
        return {
            "schema": STATS_SCHEMA,
            "cache": self._stats.as_nested(),
            "health": {
                "degraded": health.degraded,
                "fallbacks": len(health.fallbacks),
                "quarantines": len(health.quarantines),
                "dead_channels": len(health.dead_channels),
                "warnings": len(health.warnings),
                "degraded_levels": len(health.level_notes),
            },
        }

    def publish_stats(self) -> None:
        """Fold the :meth:`stats` tree into the metrics registry.

        Cache and health counters become ``repro_stats_*`` gauges plus a
        ``repro_cache_hit_ratio{cache=...}`` gauge per memo table, so one
        Prometheus scrape carries the whole run story.
        """
        self._flush_detector_observations()
        tree = self.stats()
        m = self.telemetry.metrics
        m.import_nested(
            "repro_stats", {"cache": tree["cache"], "health": tree["health"]}
        )
        ratio = m.gauge(
            "repro_cache_hit_ratio",
            "Hit ratio per confirmation/support memo table.",
            labelnames=("cache",),
        )
        for cache_name, entry in tree["cache"].items():
            if entry["calls"]:
                ratio.set(entry["hits"] / entry["calls"], cache=cache_name)

    @property
    def cache_stats(self) -> PipelineStats:
        """Deprecated accessor: use ``stats()["cache"]`` instead."""
        warnings.warn(
            "PlantHierarchyContext.cache_stats is deprecated and will be "
            "removed; read stats()['cache'] (one nested schema) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._stats

    def reset_stats(self) -> None:
        self._stats = PipelineStats()

    def invalidate_caches(self) -> None:
        """Drop every memoized result (keeps the precomputed indexes)."""
        self._confirm_cache.clear()
        self._support_cache.clear()
        self._candidate_time_cache.clear()
        self._candidates_cache.clear()

    # ------------------------------------------------------------------
    # resilient scoring primitives (sandbox + fallback chain + gate)
    # ------------------------------------------------------------------
    def _score_series_resilient(
        self, level: ProductionLevel, unit: str, series: TimeSeries
    ) -> Tuple[np.ndarray, str]:
        """Score one series through the level's fallback chain.

        Each ``ChooseAlgorithm`` candidate runs inside the sandbox (budget +
        bounded retry); on failure the next chain entry takes over and a
        :class:`FallbackEvent` lands in :attr:`health`.  If the whole chain
        fails, the robust z/MAD baseline scores the trace — a level is
        degraded, never silent.
        """
        chain = self.selector.fallback_chain(level)
        tracer = self.telemetry.tracer
        level_name = level.name
        for pos, name in enumerate(chain):
            with tracer.span(
                "detector", level=level_name, detector=name, unit=unit
            ) as sp:
                outcome = self._sandbox.call(
                    lambda name=name: make_detector(name).fit_score_series(series),
                    label=name,
                )
                sp.set(
                    ok=outcome.ok,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                )
            self._observe_detector_call(level_name, name, outcome)
            if outcome.ok:
                return np.asarray(outcome.value, dtype=float), name
            fallback = chain[pos + 1] if pos + 1 < len(chain) else "robust-baseline"
            self._note_fallback(
                FallbackEvent(
                    level=level.name,
                    unit=unit,
                    failed_detector=name,
                    error=outcome.error_text,
                    fallback=fallback,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                )
            )
        self._note_terminal_baseline(level)
        return robust_fallback_scores(np.asarray(series.values, dtype=float)), "robust-baseline"

    def _score_vectors_resilient(
        self, level: ProductionLevel, unit: str, X: np.ndarray
    ) -> Tuple[np.ndarray, str]:
        """Vector-level twin of :meth:`_score_series_resilient`."""
        chain = self.selector.fallback_chain(level)
        tracer = self.telemetry.tracer
        level_name = level.name
        for pos, name in enumerate(chain):
            with tracer.span(
                "detector", level=level_name, detector=name, unit=unit
            ) as sp:
                outcome = self._sandbox.call(
                    lambda name=name: make_detector(name).fit_score(X), label=name
                )
                sp.set(
                    ok=outcome.ok,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                )
            self._observe_detector_call(level_name, name, outcome)
            if outcome.ok:
                return np.asarray(outcome.value, dtype=float), name
            fallback = chain[pos + 1] if pos + 1 < len(chain) else "robust-baseline"
            self._note_fallback(
                FallbackEvent(
                    level=level.name,
                    unit=unit,
                    failed_detector=name,
                    error=outcome.error_text,
                    fallback=fallback,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                )
            )
        self._note_terminal_baseline(level)
        return robust_matrix_scores(X), "robust-baseline"

    def _observe_detector_call(self, level_name: str, name: str,
                               outcome: SandboxOutcome) -> None:
        if self.telemetry.enabled:
            self._pending_detector_obs.append(
                (level_name, name, outcome.ok, outcome.elapsed)
            )

    def _flush_detector_observations(self) -> None:
        """Fold deferred detector observations into the metrics registry.

        Batching keeps registry lookups and histogram label resolution off
        the per-detector hot path: counts aggregate in plain dicts here and
        land with one ``inc``/``observe_many`` per label set.
        """
        pending = self._pending_detector_obs
        if not pending:
            return
        self._pending_detector_obs = []
        call_counts: Dict[Tuple[str, str, str], int] = {}
        latencies: Dict[str, List[float]] = {}
        for level_name, detector, ok, elapsed in pending:
            key = (level_name, detector, "ok" if ok else "error")
            call_counts[key] = call_counts.get(key, 0) + 1
            latencies.setdefault(level_name, []).append(max(0.0, elapsed))
        for (level_name, detector, outcome_label), n in sorted(call_counts.items()):
            self._m_detector_calls.inc(
                n, level=level_name, detector=detector, outcome=outcome_label
            )
        for level_name, values in sorted(latencies.items()):
            self._m_detector_latency.observe_many(values, level=level_name)

    def _note_fallback(self, event: FallbackEvent) -> None:
        """Record a survived detector failure in health, metrics, and logs."""
        self.health.record_fallback(event)
        self._m_fallbacks.inc(level=event.level)
        self.telemetry.warning(
            f"detector fallback at {event.level} {event.unit}: "
            f"{event.failed_detector} -> {event.fallback} ({event.error})",
            level=event.level,
            unit=event.unit,
            failed_detector=event.failed_detector,
            fallback=event.fallback,
            timed_out=event.timed_out,
        )

    def _note_terminal_baseline(self, level: ProductionLevel) -> None:
        self.health.note_level(level.name, "scored with the terminal robust baseline")
        self.telemetry.warning(
            f"level {level.name} scored with the terminal robust baseline",
            level=level.name,
        )

    def _gate_series(self, channel_id: str, scope: str, series: TimeSeries,
                     expected_length: Optional[int] = None) -> Optional[TimeSeries]:
        """Quality-gate one trace: repaired series, or None when quarantined."""
        if not self.config.gate_enabled:
            return series
        issues = assess_series(
            np.asarray(series.values, dtype=float),
            self.config.quality,
            expected_length=expected_length,
        )
        fatal = [i for i in issues if i.fatal]
        if fatal:
            reason = "; ".join(f"{i.code}: {i.detail}" for i in fatal)
            self.health.record_quarantine(channel_id, scope, reason)
            self._m_quarantines.inc(scope="trace")
            self.telemetry.warning(
                f"quarantined {channel_id} [{scope}]: {reason}",
                channel_id=channel_id,
                scope=scope,
                timestamp=getattr(series, "start", None),
            )
            return None
        repaired, notes = repair_series(
            np.asarray(series.values, dtype=float), self.config.quality
        )
        if notes:
            self.health.warn(
                f"repaired {channel_id} at {scope}: " + "; ".join(notes)
            )
            return series.replace(values=repaired)
        return series

    def _gate_matrix(self, X: np.ndarray, label: str) -> np.ndarray:
        """Impute non-finite cells of a vector-level matrix (column median)."""
        X = np.asarray(X, dtype=float)
        bad = ~np.isfinite(X)
        if not bad.any() or not self.config.gate_enabled:
            return X
        masked = np.where(bad, np.nan, X)
        dead_cols = ~np.isfinite(masked).any(axis=0)
        if dead_cols.any():
            masked[:, dead_cols] = 0.0  # keep nanmedian off empty slices
        med = np.nanmedian(masked, axis=0)
        self.health.warn(
            f"imputed {int(bad.sum())} non-finite cell(s) in the {label} matrix"
        )
        return np.where(bad, med[None, :], X)

    def _flag_dead_channels(self) -> None:
        """Channels with zero surviving traces are quarantined wholesale.

        These are the sensors the support divisor must renormalize over:
        with no usable trace anywhere they cannot vote, and the explicit
        ``scope="channel"`` record feeds :attr:`RunHealth.dead_channels`
        (belt and braces on top of the lookup's natural None-vote)."""
        for channel_id in sorted({q.channel_id for q in self.health.quarantines}):
            if not self._traces.get(channel_id):
                self.health.record_quarantine(
                    channel_id, "channel",
                    "no usable trace survived the quality gate",
                )
                self._m_quarantines.inc(scope="channel")
                self.telemetry.warning(
                    f"dead channel {channel_id}: no usable trace survived "
                    "the quality gate; removed from the support divisor",
                    channel_id=channel_id,
                    scope="channel",
                )

    # ------------------------------------------------------------------
    # per-level scoring
    # ------------------------------------------------------------------
    def _score_phase_level(self) -> None:
        cfg = self.config
        for machine in self.dataset.iter_machines():
            for job in machine.jobs:
                for phase in job.phases:
                    items = sorted(phase.series.items())
                    # truncated-trace check: sibling channels of one phase
                    # must agree on sample count (modal length wins)
                    expected = None
                    if len(items) >= 2:
                        lengths = [len(s.values) for __, s in items]
                        counts: Dict[int, int] = {}
                        for n in lengths:
                            counts[n] = counts.get(n, 0) + 1
                        expected = max(counts, key=lambda n: (counts[n], n))
                        if counts[expected] == 1:
                            expected = None  # no majority: cannot arbitrate
                    scope = (
                        f"{machine.machine_id}/job{job.job_index}/{phase.name}"
                    )
                    for sensor_id, series in items:
                        series = self._gate_series(
                            sensor_id, scope, series, expected_length=expected
                        )
                        if series is None:
                            continue
                        scores, detector_name = self._score_series_resilient(
                            ProductionLevel.PHASE,
                            f"{scope}/{sensor_id}",
                            series,
                        )
                        trace = _Trace(
                            channel_id=sensor_id,
                            start=series.start,
                            step=series.step,
                            scores=scores,
                            threshold=_robust_threshold(scores, cfg.phase_sigma),
                        )
                        self._traces.setdefault(sensor_id, []).append(trace)
                        for idx in _peak_indices(
                            scores, trace.threshold, cfg.candidate_gap,
                            cfg.max_candidates_per_trace,
                        ):
                            self._phase_candidates.append(
                                OutlierCandidate(
                                    level=ProductionLevel.PHASE,
                                    outlierness=float(scores[idx]),
                                    machine_id=machine.machine_id,
                                    job_index=job.job_index,
                                    phase_name=phase.name,
                                    sensor_id=sensor_id,
                                    index=idx,
                                    detector=detector_name,
                                )
                            )

    def _score_env_level(self) -> None:
        cfg = self.config
        self._env_channels: Dict[str, List[str]] = {}
        for line in self.dataset.lines:
            ids = []
            for kind, series in sorted(line.environment.items()):
                channel_id = f"{line.line_id}/env/{kind}"
                series = self._gate_series(channel_id, line.line_id, series)
                if series is None:
                    continue
                scores, __ = self._score_series_resilient(
                    ProductionLevel.ENVIRONMENT, channel_id, series
                )
                trace = _Trace(
                    channel_id=channel_id,
                    start=series.start,
                    step=series.step,
                    scores=scores,
                    threshold=_robust_threshold(scores, cfg.env_sigma),
                )
                self._traces.setdefault(channel_id, []).append(trace)
                ids.append(channel_id)
            self._env_channels[line.line_id] = ids

    def _score_job_level(self) -> None:
        rows = []
        keys: List[Tuple[str, int]] = []
        for machine in self.dataset.iter_machines():
            table = self.dataset.job_table(machine.machine_id)
            for job, row in zip(machine.jobs, table):
                rows.append(row)
                keys.append((machine.machine_id, job.job_index))
        X = _robust_standardize(self._gate_matrix(np.vstack(rows), "job"))
        scores, detector_name = self._score_vectors_resilient(
            ProductionLevel.JOB, "job-table", X
        )
        threshold = _robust_threshold(scores, self.config.vector_sigma)
        unified = unify_rank(scores)
        self._job_scores = {k: float(s) for k, s in zip(keys, scores)}
        self._job_unified = {k: float(u) for k, u in zip(keys, unified)}
        self._job_flags = {k for k, s in zip(keys, scores) if s >= threshold}
        self._job_detector = detector_name

    def _score_line_level(self) -> None:
        cfg = self.config
        self._line_scores: Dict[Tuple[str, int], float] = {}
        self._line_unified: Dict[Tuple[str, int], float] = {}
        self._line_flags: set = set()
        all_scores: List[Tuple[Tuple[str, int], float]] = []
        for line in self.dataset.lines:
            mat, identity = self.dataset.jobs_over_time(line.line_id)
            if mat.shape[0] == 0:
                continue
            mat = self._gate_matrix(mat, f"{line.line_id}/jobs-over-time")
            # jobs-over-time: augment each row with its deviation from the
            # trailing robust baseline so the level sees temporal change,
            # not just static position
            history = cfg.line_history
            deltas = np.zeros_like(mat)
            for i in range(mat.shape[0]):
                lo = max(0, i - history)
                context = mat[lo:i]
                if context.shape[0] >= 2:
                    med = np.median(context, axis=0)
                    mad = np.median(np.abs(context - med), axis=0) * 1.4826
                    mad[mad <= 1e-12] = 1.0
                    deltas[i] = (mat[i] - med) / mad
            augmented = np.hstack([_robust_standardize(mat), deltas])
            scores, __ = self._score_vectors_resilient(
                ProductionLevel.PRODUCTION_LINE,
                f"{line.line_id}/jobs-over-time",
                augmented,
            )
            for key, s in zip(identity, scores):
                all_scores.append((key, float(s)))
        if not all_scores:
            return
        raw = np.array([s for __, s in all_scores])
        threshold = _robust_threshold(raw, cfg.vector_sigma)
        unified = unify_rank(raw)
        for (key, s), u in zip(all_scores, unified):
            self._line_scores[key] = s
            self._line_unified[key] = float(u)
            if s >= threshold:
                self._line_flags.add(key)

    def _score_production_level(self) -> None:
        panel, machine_ids = self.dataset.production_panel()
        panel = _robust_standardize(self._gate_matrix(panel, "production"))
        scores, __ = self._score_vectors_resilient(
            ProductionLevel.PRODUCTION, "production-panel", panel
        )
        threshold = _robust_threshold(scores, self.config.vector_sigma)
        unified = unify_rank(scores)
        self._machine_scores = {m: float(s) for m, s in zip(machine_ids, scores)}
        self._machine_unified = {m: float(u) for m, u in zip(machine_ids, unified)}
        self._machine_flags = {
            m for m, s in zip(machine_ids, scores) if s >= threshold
        }

    # ------------------------------------------------------------------
    # trace lookup (support + environment confirmation)
    # ------------------------------------------------------------------
    def _lookup_trace(
        self, channel_id: str, time: float
    ) -> Optional[Tuple[np.ndarray, float, float, float]]:
        traces = self._traces.get(channel_id)
        if not traces:
            return None
        # traces are sorted by start and non-overlapping per channel, so the
        # rightmost trace starting at or before `time` is the only candidate
        i = bisect_right(self._trace_starts[channel_id], time) - 1
        if i >= 0 and traces[i].covers(time):
            trace = traces[i]
            return trace.scores, trace.threshold, trace.start, trace.step
        return None

    def _candidate_time(self, candidate: OutlierCandidate) -> Optional[float]:
        self._stats.candidate_time_calls += 1
        key = candidate.key
        if key in self._candidate_time_cache:
            self._stats.candidate_time_hits += 1
            return self._candidate_time_cache[key]
        time = self._candidate_time_uncached(candidate)
        if self._cache_enabled:
            self._candidate_time_cache[key] = time
        return time

    def _candidate_time_uncached(self, candidate: OutlierCandidate) -> Optional[float]:
        if candidate.index is not None and "/env/" in candidate.sensor_id:
            # environment candidates live on the line-wide trace
            for trace in self._traces.get(candidate.sensor_id, ()):
                if candidate.index < len(trace.scores):
                    return trace.start + candidate.index * trace.step
            return None
        if candidate.index is None or not candidate.sensor_id:
            if candidate.job_index is None:
                return None
            job = self.dataset.find_job(candidate.machine_id, candidate.job_index)
            if job is None:
                # explicit membership check: a candidate pointing at a job
                # the dataset does not know is a data defect worth surfacing,
                # not a silent un-timestamped candidate
                self.health.warn(
                    f"candidate references unknown job "
                    f"{candidate.machine_id}/job{candidate.job_index}; "
                    "skipping its timestamp"
                )
                return None
            return (job.start + job.end) / 2.0
        trace = self._traces.get(candidate.sensor_id)
        if not trace:
            return None
        phase = self.dataset.phase_series(
            candidate.machine_id, candidate.job_index, candidate.phase_name
        )
        any_series = phase.series[candidate.sensor_id]
        return any_series.start + candidate.index * any_series.step

    def _line_of_candidate(self, candidate: OutlierCandidate) -> Optional[LineRecord]:
        """The line a candidate belongs to (environment candidates carry the
        line id in the machine_id field)."""
        line = self._line_by_id.get(candidate.machine_id)
        if line is not None:
            return line
        return self._machine_line.get(candidate.machine_id)

    # ------------------------------------------------------------------
    # HierarchyContext interface
    # ------------------------------------------------------------------
    def find_candidates(self, level: ProductionLevel) -> List[OutlierCandidate]:
        self._stats.find_candidates_calls += 1
        cached = self._candidates_cache.get(level)
        if cached is not None:
            self._stats.find_candidates_hits += 1
            return list(cached)
        with self.telemetry.tracer.span(
            "find_candidates", level=level.name
        ) as sp:
            result = self._find_candidates_uncached(level)
            sp.set(n_candidates=len(result))
        self._m_candidates.inc(len(result), level=level.name)
        if self._cache_enabled:
            self._candidates_cache[level] = result
            return list(result)
        return result

    def _find_candidates_uncached(
        self, level: ProductionLevel
    ) -> List[OutlierCandidate]:
        if level is ProductionLevel.PHASE:
            return list(self._phase_candidates)
        if level is ProductionLevel.JOB:
            return [
                OutlierCandidate(
                    level=level,
                    outlierness=self._job_scores[key],
                    machine_id=key[0],
                    job_index=key[1],
                    detector=self._job_detector,
                )
                for key in sorted(self._job_flags)
            ]
        if level is ProductionLevel.ENVIRONMENT:
            out = []
            for line in self.dataset.lines:
                for channel_id in self._env_channels[line.line_id]:
                    for trace in self._traces.get(channel_id, ()):
                        for idx in _peak_indices(
                            trace.scores, trace.threshold,
                            self.config.candidate_gap,
                            self.config.max_candidates_per_trace,
                        ):
                            out.append(
                                OutlierCandidate(
                                    level=level,
                                    outlierness=float(trace.scores[idx]),
                                    machine_id=line.line_id,
                                    sensor_id=channel_id,
                                    index=idx,
                                )
                            )
            return out
        if level is ProductionLevel.PRODUCTION_LINE:
            return [
                OutlierCandidate(
                    level=level,
                    outlierness=self._line_scores[key],
                    machine_id=key[0],
                    job_index=key[1],
                )
                for key in sorted(self._line_flags)
            ]
        if level is ProductionLevel.PRODUCTION:
            return [
                OutlierCandidate(
                    level=level,
                    outlierness=self._machine_scores[m],
                    machine_id=m,
                )
                for m in sorted(self._machine_flags)
            ]
        raise ValueError(f"unknown level {level!r}")

    def _is_line_scoped(self, candidate: OutlierCandidate) -> bool:
        return candidate.machine_id in self._line_by_id

    def _jobs_in_window(self, candidate: OutlierCandidate) -> List[Tuple[str, int]]:
        """(machine, job) keys of the candidate line's jobs near its time."""
        line = self._line_of_candidate(candidate)
        if line is None:
            return []
        time = self._candidate_time(candidate)
        starts, run_max_end, spans = self._job_intervals[line.line_id]
        if time is None:
            return [(machine_id, job_index) for __, __, machine_id, job_index in spans]
        eps = 1e-9
        keys = []
        # jobs with start <= time + eps, walked right-to-left; the running
        # max end bounds how far left a covering interval can still sit
        i = bisect_right(starts, time + eps) - 1
        while i >= 0 and run_max_end[i] >= time - eps:
            __, end, machine_id, job_index = spans[i]
            if end >= time - eps:
                keys.append((machine_id, job_index))
            i -= 1
        keys.reverse()
        return keys

    def _confirm_line_scoped(self, candidate: OutlierCandidate,
                             level: ProductionLevel) -> LevelConfirmation:
        """Cross-level checks for environment (line-scoped) candidates."""
        if level is ProductionLevel.JOB:
            keys = self._jobs_in_window(candidate)
            hits = [k for k in keys if k in self._job_flags]
            best = max((self._job_unified.get(k, 0.0) for k in keys), default=0.0)
            return LevelConfirmation(
                level, bool(hits), best,
                note=f"{len(hits)} concurrent job(s) flagged" if hits else "",
            )
        if level is ProductionLevel.PRODUCTION_LINE:
            keys = self._jobs_in_window(candidate)
            hits = [k for k in keys if k in self._line_flags]
            best = max((self._line_unified.get(k, 0.0) for k in keys), default=0.0)
            return LevelConfirmation(level, bool(hits), best)
        if level is ProductionLevel.PRODUCTION:
            line = self._line_of_candidate(candidate)
            machines = [m.machine_id for m in line.machines] if line else []
            hits = [m for m in machines if m in self._machine_flags]
            best = max(
                (self._machine_unified.get(m, 0.0) for m in machines), default=0.0
            )
            return LevelConfirmation(level, bool(hits), best)
        raise ValueError(f"unexpected line-scoped level {level!r}")

    def confirm(self, candidate: OutlierCandidate,
                level: ProductionLevel) -> LevelConfirmation:
        self._stats.confirm_calls += 1
        key = (candidate.key, level)
        cached = self._confirm_cache.get(key)
        if cached is not None:
            self._stats.confirm_hits += 1
            return cached
        level_name = getattr(level, "name", str(level))
        with self.telemetry.tracer.span(
            "confirm", level=level_name, candidate=candidate.location
        ) as sp:
            result = self._confirm_uncached(candidate, level)
            sp.set(detected=result.detected)
        self._m_confirmations.inc(
            level=level_name, detected=str(bool(result.detected)).lower()
        )
        if self._cache_enabled:
            self._confirm_cache[key] = result
        return result

    def _confirm_uncached(self, candidate: OutlierCandidate,
                          level: ProductionLevel) -> LevelConfirmation:
        if (
            self._is_line_scoped(candidate)
            and level in (
                ProductionLevel.JOB,
                ProductionLevel.PRODUCTION_LINE,
                ProductionLevel.PRODUCTION,
            )
        ):
            return self._confirm_line_scoped(candidate, level)
        key = (candidate.machine_id, candidate.job_index)
        if level is ProductionLevel.JOB:
            detected = key in self._job_flags
            return LevelConfirmation(
                level, detected, self._job_unified.get(key, 0.0),
                note="CAQ+setup row flagged" if detected else "job row normal",
            )
        if level is ProductionLevel.ENVIRONMENT:
            return self._confirm_environment(candidate)
        if level is ProductionLevel.PRODUCTION_LINE:
            detected = key in self._line_flags
            return LevelConfirmation(
                level, detected, self._line_unified.get(key, 0.0),
                note="jobs-over-time row flagged" if detected else "",
            )
        if level is ProductionLevel.PRODUCTION:
            detected = candidate.machine_id in self._machine_flags
            return LevelConfirmation(
                level, detected,
                self._machine_unified.get(candidate.machine_id, 0.0),
                note="machine KPI flagged" if detected else "",
            )
        if level is ProductionLevel.PHASE:
            return self._confirm_phase(candidate)
        raise ValueError(f"unknown level {level!r}")

    def _confirm_environment(self, candidate: OutlierCandidate) -> LevelConfirmation:
        time = self._candidate_time(candidate)
        level = ProductionLevel.ENVIRONMENT
        if time is None:
            return LevelConfirmation(level, False, 0.0, note="no timestamp")
        line = self._line_of_candidate(candidate)
        if line is None:
            return LevelConfirmation(level, False, 0.0, note="unknown line")
        tol = max(self.config.support_tolerance, 4.0)
        best = 0.0
        detected = False
        for channel_id in self._env_channels[line.line_id]:
            entry = self._lookup_trace(channel_id, time)
            if entry is None:
                continue
            scores, threshold, start, step = entry
            lo, hi = window_bounds(time, tol, start, step, len(scores))
            if hi <= lo:
                continue
            window = scores[lo:hi]
            peak = float(window.max())
            med, spread = self._trace_med_spread(channel_id, start, scores)
            best = max(best, min(1.0, max(0.0, (peak - med) / (spread * 10.0))))
            if peak >= threshold:
                detected = True
        return LevelConfirmation(
            level, detected, best,
            note="environment anomaly in window" if detected else "",
        )

    def _trace_med_spread(
        self, channel_id: str, start: float, scores: np.ndarray
    ) -> Tuple[float, float]:
        """Median / MAD spread of one trace, computed once per trace."""
        key = (channel_id, start)
        cached = self._trace_stats.get(key)
        if cached is None:
            med = float(np.median(scores))
            spread = float(np.median(np.abs(scores - med))) * 1.4826 or 1.0
            cached = (med, spread)
            self._trace_stats[key] = cached
        return cached

    def _confirm_phase(self, candidate: OutlierCandidate) -> LevelConfirmation:
        level = ProductionLevel.PHASE
        line = self._line_of_candidate(candidate)
        line_machines = (
            {m.machine_id for m in line.machines} if line is not None else set()
        )
        if candidate.machine_id in line_machines or line is None:
            # machine-scoped candidate: match its machine (and job when known)
            if candidate.job_index is None:
                matches = self._phase_by_machine.get(candidate.machine_id, [])
            else:
                matches = self._phase_by_machine_job.get(
                    (candidate.machine_id, candidate.job_index), []
                )
        else:
            # line-scoped candidate (environment level): any machine of the
            # line with a phase-level sighting near the candidate's time
            time = self._candidate_time(candidate)
            tol = max(self.config.support_tolerance * 4, 32.0)
            matches = []
            for machine in line.machines:
                for c in self._phase_by_machine.get(machine.machine_id, ()):
                    c_time = self._candidate_time(c)
                    if time is None or c_time is None or abs(c_time - time) <= tol:
                        matches.append(c)
        if not matches:
            return LevelConfirmation(level, False, 0.0, note="no phase anomaly")
        best = max(c.outlierness for c in matches)
        # rank of `best` among all phase scores == (scores <= best).mean()
        n = len(self._phase_scores_sorted)
        unified = float(
            np.searchsorted(self._phase_scores_sorted, best, side="right")
        ) / n
        return LevelConfirmation(
            level, True, unified,
            note=f"{len(matches)} phase-level candidate(s) in job",
        )

    def support(self, candidate: OutlierCandidate) -> SupportResult:
        self._stats.support_calls += 1
        key = candidate.key
        cached = self._support_cache.get(key)
        if cached is not None:
            self._stats.support_hits += 1
            return cached
        with self.telemetry.tracer.span(
            "support", candidate=candidate.location
        ) as sp:
            result = self._support_uncached(candidate)
            sp.set(
                support=float(result.support),
                n_corresponding=result.n_corresponding,
            )
        self._m_support.observe(float(result.support))
        if self._cache_enabled:
            self._support_cache[key] = result
        return result

    def _support_uncached(self, candidate: OutlierCandidate) -> SupportResult:
        if not candidate.sensor_id:
            return SupportResult(0.0, 0, ())
        time = self._candidate_time(candidate)
        if time is None:
            return SupportResult(0.0, 0, ())
        return self._support_calc.support_for(candidate.sensor_id, time)

    # convenience accessors used by benches -----------------------------
    @property
    def phase_candidates(self) -> List[OutlierCandidate]:
        return list(self._phase_candidates)

    @property
    def correspondence_graph(self) -> CorrespondenceGraph:
        return self._graph


class HierarchicalDetectionPipeline:
    """Public facade: simulate-once, then query hierarchical reports."""

    def __init__(
        self,
        dataset: PlantDataset,
        selector: Optional[AlgorithmSelector] = None,
        config: Optional[PipelineConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or PipelineConfig()
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=self.config.enable_telemetry)
        )
        self.context = PlantHierarchyContext(
            dataset, selector, self.config, telemetry=self.telemetry
        )

    def run(
        self,
        start_level: ProductionLevel = ProductionLevel.PHASE,
        fusion_strategy: Optional[str] = None,
        unify_method: str = "rank",
    ) -> List[HierarchicalOutlierReport]:
        """Algorithm 1 from ``start_level``, reports ranked best-first.

        ``unify_method`` controls how the start-level outlierness batch is
        mapped to [0, 1] (``"rank"`` by default — note this differs from
        the ``"gaussian"`` default of the low-level ``unify()`` helper).
        Repeated calls reuse the context's confirmation/support caches;
        see :meth:`stats`.
        """
        fusion = fusion_strategy or self.config.fusion_strategy
        with self.telemetry.tracer.span(
            "alg1.run",
            start_level=start_level.name,
            fusion=fusion,
            unify=unify_method,
        ) as sp:
            reports = find_hierarchical_outliers(
                self.context,
                start_level,
                fusion_strategy=fusion,
                unify_method=unify_method,
            )
            ranked = rank_reports(reports)
            sp.set(n_reports=len(ranked))
        self._publish_run_metrics(start_level, ranked)
        return ranked

    def _publish_run_metrics(
        self,
        start_level: ProductionLevel,
        reports: List[HierarchicalOutlierReport],
    ) -> None:
        m = self.telemetry.metrics
        m.counter(
            "repro_runs_total", "Algorithm-1 runs executed.",
            labelnames=("start_level",),
        ).inc(start_level=start_level.name)
        m.counter(
            "repro_reports_total", "Hierarchical outlier reports emitted.",
        ).inc(len(reports))
        warnings_total = m.counter(
            "repro_measurement_warnings_total",
            "Reports carrying the wrong-measurement warning.",
        )
        confirmed = m.counter(
            "repro_confirmed_levels_total",
            "Level confirmations attached to emitted reports, by outcome.",
            labelnames=("level", "detected"),
        )
        for report in reports:
            if report.measurement_warning:
                warnings_total.inc()
            for conf in report.confirmations:
                confirmed.inc(
                    level=conf.level.name,
                    detected=str(bool(conf.detected)).lower(),
                )
        self.context.publish_stats()

    @property
    def health(self) -> RunHealth:
        """Structured degradation record of the run (fallbacks, quarantines)."""
        return self.context.health

    def stats(self) -> Dict[str, object]:
        """The unified nested stats dict (see :data:`STATS_SCHEMA`)."""
        return self.context.stats()

    def flat_baseline(self) -> List[HierarchicalOutlierReport]:
        """Single-level baseline: phase candidates ranked by outlierness only.

        Reports carry global score 1 and neutral support, exactly what a
        non-hierarchical detector could know.
        """
        candidates = self.context.find_candidates(ProductionLevel.PHASE)
        if not candidates:
            return []
        unified = unify_rank([c.outlierness for c in candidates])
        reports = [
            HierarchicalOutlierReport(
                candidate=c,
                global_score=1,
                outlierness=float(u),
                support=0.0,
                n_corresponding=0,
                fused_score=float(u),
            )
            for c, u in zip(candidates, unified)
        ]
        return sorted(reports, key=lambda r: r.outlierness, reverse=True)
