"""End-to-end hierarchical detection over a simulated plant run.

:class:`HierarchicalDetectionPipeline` wires everything together: the
per-level detectors chosen by :class:`~repro.core.selection.AlgorithmSelector`
score every level of a :class:`~repro.plant.PlantDataset`, the
correspondence graph feeds the support computation, and Algorithm 1 turns
phase-level candidates into ranked ⟨global score, outlierness, support⟩
reports.  A *flat* single-level baseline (outlierness only, no hierarchy)
is exposed for the alg1 benchmark.

The context is the Algorithm-1 hot path, so it is built to be queried
repeatedly: per-level flag/score indexes (machine→line map, job interval
index, sorted per-channel trace index, phase-candidate indexes) are
precomputed once, and ``confirm`` / ``support`` / ``find_candidates`` are
memoized on the candidate's canonical :attr:`~repro.core.OutlierCandidate.key`
(toggle with :attr:`PipelineConfig.enable_cache`; counters via
:meth:`PlantHierarchyContext.stats`).
"""

from __future__ import annotations

import functools
import math
import os
import pickle
import threading
import time
import warnings
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, cast

import numpy as np

from ..detectors import make_detector
from ..obs import Telemetry
from ..obs.metrics import BYTE_BUCKETS, UNIT_BUCKETS
from ..obs.trace import Tracer
from ..plant import JobRecord, LineRecord, PlantDataset
from ..timeseries import TimeSeries
from .algorithm import HierarchyContext, find_hierarchical_outliers
from .levels import ProductionLevel
from .outlier import (
    HierarchicalOutlierReport,
    LevelConfirmation,
    OutlierCandidate,
    rank_reports,
)
from . import shm
from .parallel import EngineStats, ParallelEngine, Task, TaskGraph, derive_task_seed
from .resilience import (
    DetectorSandbox,
    FallbackEvent,
    QualityPolicy,
    RunHealth,
    SandboxPolicy,
    assess_series,
    repair_series,
    robust_fallback_scores,
    robust_matrix_scores,
)
from .scores import unify_rank
from .selection import AlgorithmSelector
from .support import CorrespondenceGraph, SupportCalculator, SupportResult, window_bounds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .checkpoint import CheckpointManager

__all__ = [
    "PipelineConfig",
    "PipelineStats",
    "PlantHierarchyContext",
    "HierarchicalDetectionPipeline",
    "STATS_SCHEMA",
]

#: Version tag of the nested dict returned by ``stats()`` (see
#: docs/OBSERVABILITY.md for the full schema).
STATS_SCHEMA = "repro.stats/4"


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of the plant pipeline (all robust-scale units)."""

    phase_sigma: float = 6.0  # MAD multiplier flagging phase-trace samples
    env_sigma: float = 5.0
    vector_sigma: float = 2.0  # job / line / production flags
    support_tolerance: float = 8.0
    fusion_strategy: str = "weighted"
    max_candidates_per_trace: int = 3
    candidate_gap: int = 3  # samples merging consecutive flagged runs
    line_history: int = 5  # jobs of temporal context at the line level
    enable_cache: bool = True  # memoize confirm/support/candidate lookups
    enable_telemetry: bool = True  # spans + metrics + structured logs
    gate_enabled: bool = True  # data-quality gate + trace repair/quarantine
    quality: QualityPolicy = QualityPolicy()  # gate thresholds
    sandbox: SandboxPolicy = SandboxPolicy()  # detector budget/retry policy
    executor: str = "serial"  # scoring DAG executor: serial | thread | process
    max_workers: Optional[int] = None  # pool size; None = auto from CPU affinity
    batch_scoring: bool = False  # batch same-length traces through one detector fit
    shm_transport: bool = True  # process executor: trace arrays via shared memory
    checkpoint_dir: Optional[str] = None  # snapshot store directory; None = off
    checkpoint_every: int = 1  # snapshot after every Nth refresh()
    checkpoint_retain: int = 3  # snapshot files kept on disk
    perf_alloc: bool = False  # per-task tracemalloc peak capture (slow; opt-in)


@dataclass
class PipelineStats:
    """Call/hit counters of the context's memoization layer.

    A *miss* is an actual recomputation; ``calls - hits == misses``, so a
    caller that re-runs Algorithm 1 N times over an unchanged context
    should see ``confirm_calls ≈ N × confirm_misses``.
    """

    confirm_calls: int = 0
    confirm_hits: int = 0
    support_calls: int = 0
    support_hits: int = 0
    candidate_time_calls: int = 0
    candidate_time_hits: int = 0
    find_candidates_calls: int = 0
    find_candidates_hits: int = 0

    @property
    def confirm_misses(self) -> int:
        return self.confirm_calls - self.confirm_hits

    @property
    def support_misses(self) -> int:
        return self.support_calls - self.support_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "confirm_calls": self.confirm_calls,
            "confirm_hits": self.confirm_hits,
            "confirm_misses": self.confirm_misses,
            "support_calls": self.support_calls,
            "support_hits": self.support_hits,
            "support_misses": self.support_misses,
            "candidate_time_calls": self.candidate_time_calls,
            "candidate_time_hits": self.candidate_time_hits,
            "find_candidates_calls": self.find_candidates_calls,
            "find_candidates_hits": self.find_candidates_hits,
        }

    def as_nested(self) -> Dict[str, Dict[str, int]]:
        """The ``cache`` block of the :data:`STATS_SCHEMA` stats dict:
        one ``{"calls", "hits", "misses"}`` entry per memo table."""
        def entry(calls: int, hits: int) -> Dict[str, int]:
            return {"calls": calls, "hits": hits, "misses": calls - hits}

        return {
            "confirm": entry(self.confirm_calls, self.confirm_hits),
            "support": entry(self.support_calls, self.support_hits),
            "candidate_time": entry(
                self.candidate_time_calls, self.candidate_time_hits
            ),
            "find_candidates": entry(
                self.find_candidates_calls, self.find_candidates_hits
            ),
        }


@dataclass
class _Trace:
    """Outlierness trace of one channel over one contiguous time span."""

    channel_id: str
    start: float
    step: float
    scores: np.ndarray
    threshold: float

    @property
    def end(self) -> float:
        return self.start + len(self.scores) * self.step

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


def _robust_standardize(X: np.ndarray) -> np.ndarray:
    """Per-column median/MAD scaling so no raw unit dominates distances."""
    med = np.median(X, axis=0)
    mad = np.median(np.abs(X - med), axis=0) * 1.4826
    mad[mad <= 1e-12] = 1.0
    return (X - med) / mad


def _robust_threshold(scores: np.ndarray, sigma: float) -> float:
    finite = scores[np.isfinite(scores)]
    if finite.size == 0:
        return math.inf
    med = float(np.median(finite))
    mad = float(np.median(np.abs(finite - med))) * 1.4826
    if mad <= 1e-12:
        mad = float(finite.std()) or 1.0
    return med + sigma * mad


def _peak_indices(scores: np.ndarray, threshold: float, gap: int,
                  max_peaks: int) -> List[int]:
    """Argmax of every flagged run (runs closer than ``gap`` merge)."""
    above = np.where(scores >= threshold)[0]
    if above.size == 0:
        return []
    peaks: List[Tuple[float, int]] = []
    run_start = above[0]
    prev = above[0]
    for idx in above[1:]:
        if idx - prev > gap:
            segment = scores[run_start : prev + 1]
            peaks.append((float(segment.max()), run_start + int(segment.argmax())))
            run_start = idx
        prev = idx
    segment = scores[run_start : prev + 1]
    peaks.append((float(segment.max()), run_start + int(segment.argmax())))
    peaks.sort(reverse=True)
    return [idx for __, idx in peaks[:max_peaks]]


def _modal_expected_length(
    items: Tuple[Tuple[str, TimeSeries], ...]
) -> Optional[int]:
    """Majority sample count among sibling channels (None when no majority)."""
    if len(items) < 2:
        return None
    counts: Dict[int, int] = {}
    for __, series in items:
        n = len(series.values)
        counts[n] = counts.get(n, 0) + 1
    expected = max(counts, key=lambda n: (counts[n], n))
    return None if counts[expected] == 1 else expected


# ----------------------------------------------------------------------
# scoring tasks (executed by repro.core.parallel, possibly out-of-process)
# ----------------------------------------------------------------------
#
# The five `_score_*_level` walks of the serial pipeline are decomposed
# into per-machine / per-line tasks.  A task is a pure function of its
# picklable payload: it records health/metric side effects as an ordered
# *event list* and its spans on a worker-local tracer, and the context
# replays both at merge time in graph insertion order — so the health
# record, the metrics, and the exported reports are bit-identical across
# the serial, thread, and process executors.

_EventList = List[Tuple[str, object]]


@dataclass(frozen=True)
class _ScoreTask:
    """Picklable payload of one scoring task.

    ``seed`` is a deterministic per-task RNG child derived from the task
    key (:func:`repro.core.parallel.derive_task_seed`) — available to
    stochastic detectors so determinism never depends on scheduling
    order (the built-in detectors additionally self-seed).
    """

    kind: str  # "phase" | "env" | "job" | "line" | "production"
    key: str
    level: ProductionLevel
    chain: Tuple[str, ...]
    config: PipelineConfig
    seed: int
    telemetry_enabled: bool
    executor: str
    #: Tuple of level inputs, or an ``shm.ShmPayload`` wrapping that tuple
    #: when the shared-memory transport is active.
    data: object


@dataclass
class _TaskResult:
    """What one scoring task ships back to the merge step."""

    key: str
    kind: str
    events: _EventList
    spans: List[Dict[str, object]]
    output: object
    batch_groups: int = 0
    #: Seconds this task spent attaching/reading shared-memory payloads
    #: (0.0 on the pickle path).
    transport_seconds: float = 0.0


@dataclass
class _WorkerState:
    """Mutable per-task scratch shared by the worker-side helpers."""

    config: PipelineConfig
    level: ProductionLevel
    chain: Tuple[str, ...]
    tracer: Tracer
    sandbox: DetectorSandbox
    telemetry_enabled: bool
    events: _EventList = field(default_factory=list)
    batch_groups: int = 0


def _worker_label(executor: str) -> str:
    """Human-readable worker attribution for task root spans."""
    if executor == "thread":
        return threading.current_thread().name
    if executor == "process":
        return f"pid-{os.getpid()}"
    return "main"


def _gate_series_w(
    state: _WorkerState,
    channel_id: str,
    scope: str,
    series: TimeSeries,
    expected_length: Optional[int] = None,
) -> Optional[TimeSeries]:
    """Quality-gate one trace: repaired series, or None when quarantined."""
    cfg = state.config
    if not cfg.gate_enabled:
        return series
    issues = assess_series(
        np.asarray(series.values, dtype=float),
        cfg.quality,
        expected_length=expected_length,
    )
    fatal = [i for i in issues if i.fatal]
    if fatal:
        reason = "; ".join(f"{i.code}: {i.detail}" for i in fatal)
        state.events.append(
            ("quarantine", (channel_id, scope, reason, getattr(series, "start", None)))
        )
        return None
    repaired, notes = repair_series(
        np.asarray(series.values, dtype=float), cfg.quality
    )
    if notes:
        state.events.append(
            ("warn", f"repaired {channel_id} at {scope}: " + "; ".join(notes))
        )
        return series.replace(values=repaired)
    return series


def _gate_matrix_w(state: _WorkerState, X: np.ndarray, label: str) -> np.ndarray:
    """Impute non-finite cells of a vector-level matrix (column median)."""
    X = np.asarray(X, dtype=float)
    bad = ~np.isfinite(X)
    if not bad.any() or not state.config.gate_enabled:
        return X
    masked = np.where(bad, np.nan, X)
    dead_cols = ~np.isfinite(masked).any(axis=0)
    if dead_cols.any():
        masked[:, dead_cols] = 0.0  # keep nanmedian off empty slices
    med = np.nanmedian(masked, axis=0)
    state.events.append(
        ("warn", f"imputed {int(bad.sum())} non-finite cell(s) in the {label} matrix")
    )
    return np.where(bad, med[None, :], X)


def _observe_outcome(
    state: _WorkerState, name: str, outcome: object
) -> None:
    if state.telemetry_enabled:
        state.events.append(
            ("obs", (state.level.name, name, outcome.ok, outcome.elapsed))  # type: ignore[attr-defined]
        )


def _score_series_resilient(
    state: _WorkerState, unit: str, series: TimeSeries
) -> Tuple[np.ndarray, str]:
    """Score one series through the level's fallback chain.

    Each ``ChooseAlgorithm`` candidate runs inside the sandbox (budget +
    bounded retry); on failure the next chain entry takes over and a
    :class:`FallbackEvent` is queued for the merge step.  If the whole
    chain fails, the robust z/MAD baseline scores the trace — a level is
    degraded, never silent.
    """
    level_name = state.level.name
    chain = state.chain
    for pos, name in enumerate(chain):
        with state.tracer.span(
            "detector", level=level_name, detector=name, unit=unit
        ) as sp:
            outcome = state.sandbox.call(
                lambda name=name: make_detector(name).fit_score_series(series),
                label=name,
            )
            sp.set(
                ok=outcome.ok,
                attempts=outcome.attempts,
                timed_out=outcome.timed_out,
            )
        _observe_outcome(state, name, outcome)
        if outcome.ok:
            return np.asarray(outcome.value, dtype=float), name
        fallback = chain[pos + 1] if pos + 1 < len(chain) else "robust-baseline"
        state.events.append(
            (
                "fallback",
                FallbackEvent(
                    level=level_name,
                    unit=unit,
                    failed_detector=name,
                    error=outcome.error_text,
                    fallback=fallback,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                ),
            )
        )
    state.events.append(("terminal", level_name))
    return robust_fallback_scores(np.asarray(series.values, dtype=float)), "robust-baseline"


def _score_vectors_resilient(
    state: _WorkerState, unit: str, X: np.ndarray
) -> Tuple[np.ndarray, str]:
    """Vector-level twin of :func:`_score_series_resilient`."""
    level_name = state.level.name
    chain = state.chain
    for pos, name in enumerate(chain):
        with state.tracer.span(
            "detector", level=level_name, detector=name, unit=unit
        ) as sp:
            outcome = state.sandbox.call(
                lambda name=name: make_detector(name).fit_score(X), label=name
            )
            sp.set(
                ok=outcome.ok,
                attempts=outcome.attempts,
                timed_out=outcome.timed_out,
            )
        _observe_outcome(state, name, outcome)
        if outcome.ok:
            return np.asarray(outcome.value, dtype=float), name
        fallback = chain[pos + 1] if pos + 1 < len(chain) else "robust-baseline"
        state.events.append(
            (
                "fallback",
                FallbackEvent(
                    level=level_name,
                    unit=unit,
                    failed_detector=name,
                    error=outcome.error_text,
                    fallback=fallback,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                ),
            )
        )
    state.events.append(("terminal", level_name))
    return robust_matrix_scores(X), "robust-baseline"


def _score_series_group(
    state: _WorkerState, unit: str, series_list: List[TimeSeries]
) -> Tuple[List[np.ndarray], str]:
    """One fallback-chain walk scoring a whole same-length group at once."""
    level_name = state.level.name
    chain = state.chain
    for pos, name in enumerate(chain):
        with state.tracer.span(
            "detector", level=level_name, detector=name, unit=unit,
            batch=len(series_list),
        ) as sp:
            outcome = state.sandbox.call(
                lambda name=name: make_detector(name).fit_score_series_batch(
                    series_list
                ),
                label=name,
            )
            sp.set(
                ok=outcome.ok,
                attempts=outcome.attempts,
                timed_out=outcome.timed_out,
            )
        _observe_outcome(state, name, outcome)
        if outcome.ok:
            return [np.asarray(v, dtype=float) for v in outcome.value], name
        fallback = chain[pos + 1] if pos + 1 < len(chain) else "robust-baseline"
        state.events.append(
            (
                "fallback",
                FallbackEvent(
                    level=level_name,
                    unit=unit,
                    failed_detector=name,
                    error=outcome.error_text,
                    fallback=fallback,
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                ),
            )
        )
    state.events.append(("terminal", level_name))
    return [
        robust_fallback_scores(np.asarray(s.values, dtype=float))
        for s in series_list
    ], "robust-baseline"


def _score_series_batch(
    state: _WorkerState,
    scope: str,
    gated: List[Tuple[str, TimeSeries]],
) -> List[Tuple[np.ndarray, str]]:
    """Batched scoring: stack same-length channels through one detector fit.

    Channels are grouped by sample count in first-occurrence order and
    each group walks the fallback chain once via ``fit_score_series_batch``
    — amortizing detector construction, sandbox overhead, and (for
    vectorizing detectors such as ``ar``) the model fit itself.  Results
    come back in the original channel order.
    """
    groups: Dict[int, List[int]] = {}
    for i, (__, series) in enumerate(gated):
        groups.setdefault(len(series.values), []).append(i)
    results: List[Optional[Tuple[np.ndarray, str]]] = [None] * len(gated)
    for length, idxs in groups.items():
        series_list = [gated[i][1] for i in idxs]
        unit = f"{scope}/batch[len={length},n={len(idxs)}]"
        scores_list, name = _score_series_group(state, unit, series_list)
        for i, scores in zip(idxs, scores_list):
            results[i] = (scores, name)
    state.batch_groups += len(groups)
    return cast(List[Tuple[np.ndarray, str]], results)


def _run_phase_task(state: _WorkerState, data: Tuple[object, ...]) -> object:
    machine_id, jobs = cast(
        Tuple[str, Tuple[Tuple[int, Tuple[Tuple[str, Tuple[Tuple[str, TimeSeries], ...]], ...]], ...]],
        data,
    )
    cfg = state.config
    traces: List[Tuple[str, _Trace]] = []
    candidates: List[OutlierCandidate] = []
    for job_index, phases in jobs:
        for phase_name, items in phases:
            expected = _modal_expected_length(items)
            scope = f"{machine_id}/job{job_index}/{phase_name}"
            gated: List[Tuple[str, TimeSeries]] = []
            scored: List[Tuple[np.ndarray, str]] = []
            if cfg.batch_scoring:
                for sensor_id, series in items:
                    kept = _gate_series_w(
                        state, sensor_id, scope, series, expected_length=expected
                    )
                    if kept is not None:
                        gated.append((sensor_id, kept))
                scored = _score_series_batch(state, scope, gated)
            else:
                for sensor_id, series in items:
                    kept = _gate_series_w(
                        state, sensor_id, scope, series, expected_length=expected
                    )
                    if kept is None:
                        continue
                    gated.append((sensor_id, kept))
                    scored.append(
                        _score_series_resilient(state, f"{scope}/{sensor_id}", kept)
                    )
            for (sensor_id, series), (scores, detector_name) in zip(gated, scored):
                trace = _Trace(
                    channel_id=sensor_id,
                    start=series.start,
                    step=series.step,
                    scores=scores,
                    threshold=_robust_threshold(scores, cfg.phase_sigma),
                )
                traces.append((sensor_id, trace))
                for idx in _peak_indices(
                    scores, trace.threshold, cfg.candidate_gap,
                    cfg.max_candidates_per_trace,
                ):
                    candidates.append(
                        OutlierCandidate(
                            level=ProductionLevel.PHASE,
                            outlierness=float(scores[idx]),
                            machine_id=machine_id,
                            job_index=job_index,
                            phase_name=phase_name,
                            sensor_id=sensor_id,
                            index=idx,
                            detector=detector_name,
                        )
                    )
    return traces, candidates


def _run_env_task(state: _WorkerState, data: Tuple[object, ...]) -> object:
    line_id, items = cast(Tuple[str, Tuple[Tuple[str, TimeSeries], ...]], data)
    cfg = state.config
    gated: List[Tuple[str, TimeSeries]] = []
    scored: List[Tuple[np.ndarray, str]] = []
    if cfg.batch_scoring:
        for channel_id, series in items:
            kept = _gate_series_w(state, channel_id, line_id, series)
            if kept is not None:
                gated.append((channel_id, kept))
        scored = _score_series_batch(state, f"{line_id}/env", gated)
    else:
        for channel_id, series in items:
            kept = _gate_series_w(state, channel_id, line_id, series)
            if kept is None:
                continue
            gated.append((channel_id, kept))
            scored.append(_score_series_resilient(state, channel_id, kept))
    traces: List[Tuple[str, _Trace]] = []
    ids: List[str] = []
    for (channel_id, series), (scores, __) in zip(gated, scored):
        trace = _Trace(
            channel_id=channel_id,
            start=series.start,
            step=series.step,
            scores=scores,
            threshold=_robust_threshold(scores, cfg.env_sigma),
        )
        traces.append((channel_id, trace))
        ids.append(channel_id)
    return traces, ids


def _run_job_task(state: _WorkerState, data: Tuple[object, ...]) -> object:
    keys, raw = cast(Tuple[Tuple[Tuple[str, int], ...], np.ndarray], data)
    X = _robust_standardize(_gate_matrix_w(state, raw, "job"))
    scores, detector_name = _score_vectors_resilient(state, "job-table", X)
    return keys, scores, detector_name


def _run_line_task(state: _WorkerState, data: Tuple[object, ...]) -> object:
    line_id, mat, identity = cast(
        Tuple[str, np.ndarray, Tuple[Tuple[str, int], ...]], data
    )
    cfg = state.config
    mat = _gate_matrix_w(state, mat, f"{line_id}/jobs-over-time")
    # jobs-over-time: augment each row with its deviation from the
    # trailing robust baseline so the level sees temporal change,
    # not just static position
    history = cfg.line_history
    deltas = np.zeros_like(mat)
    for i in range(mat.shape[0]):
        lo = max(0, i - history)
        context = mat[lo:i]
        if context.shape[0] >= 2:
            med = np.median(context, axis=0)
            mad = np.median(np.abs(context - med), axis=0) * 1.4826
            mad[mad <= 1e-12] = 1.0
            deltas[i] = (mat[i] - med) / mad
    augmented = np.hstack([_robust_standardize(mat), deltas])
    scores, __ = _score_vectors_resilient(
        state, f"{line_id}/jobs-over-time", augmented
    )
    return identity, scores


def _run_production_task(state: _WorkerState, data: Tuple[object, ...]) -> object:
    panel, machine_ids = cast(Tuple[np.ndarray, Tuple[str, ...]], data)
    panel = _robust_standardize(_gate_matrix_w(state, panel, "production"))
    scores, __ = _score_vectors_resilient(state, "production-panel", panel)
    return machine_ids, scores


_TASK_RUNNERS: Dict[str, Callable[[_WorkerState, Tuple[object, ...]], object]] = {
    "phase": _run_phase_task,
    "env": _run_env_task,
    "job": _run_job_task,
    "line": _run_line_task,
    "production": _run_production_task,
}


def _run_scoring_task(
    task: _ScoreTask, clock: Optional[Callable[[], float]] = None
) -> _TaskResult:
    """Execute one scoring task (module-level: crosses the pickle boundary).

    Serial and thread executors inject the run's shared telemetry clock;
    process workers fall back to ``time.monotonic`` and their span trees
    are grafted as roots (worker clocks are not comparable with an
    injected main-process clock).  Shared-memory payloads are resolved
    here, per task — no worker-global attachment cache — and the decode
    cost ships back on the result for transport attribution.
    """
    data, transport_seconds, __ = shm.resolve_payload(task.data)
    tracer = Tracer(
        clock=clock if clock is not None else time.monotonic,
        enabled=task.telemetry_enabled,
    )
    state = _WorkerState(
        config=task.config,
        level=task.level,
        chain=task.chain,
        tracer=tracer,
        sandbox=DetectorSandbox(task.config.sandbox),
        telemetry_enabled=task.telemetry_enabled,
    )
    with tracer.span(
        f"score.{task.level.name}",
        level=task.level.name,
        task=task.key,
        executor=task.executor,
        worker=_worker_label(task.executor),
    ):
        output = _TASK_RUNNERS[task.kind](state, cast(Tuple[object, ...], data))
    return _TaskResult(
        key=task.key,
        kind=task.kind,
        events=state.events,
        spans=[s.as_dict() for s in tracer.spans],
        output=output,
        batch_groups=state.batch_groups,
        transport_seconds=transport_seconds,
    )


def _publish_graph_to_shm(graph: TaskGraph) -> Tuple[shm.ShmArena, TaskGraph]:
    """Swap every task's trace arrays for shared-memory descriptors.

    Publishes one arena for the whole graph and rebuilds the graph (same
    keys, same deps, same insertion order) with descriptor payloads, so
    only descriptors cross the process pool's pickle boundary.
    """
    payloads: Dict[str, object] = {}
    for task in graph:
        score_task = cast(_ScoreTask, task.payload)
        payloads[task.key] = score_task.data
    arena, encoded = shm.ShmArena.publish(payloads)
    out = TaskGraph()
    for task in graph:
        score_task = cast(_ScoreTask, task.payload)
        out.add(
            Task(
                key=task.key,
                payload=replace(score_task, data=encoded[task.key]),
                deps=task.deps,
            )
        )
    return arena, out


class PlantHierarchyContext(HierarchyContext):
    """Hierarchy oracle over one plant dataset (see module docstring)."""

    def __init__(
        self,
        dataset: PlantDataset,
        selector: Optional[AlgorithmSelector] = None,
        config: Optional[PipelineConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._init_state(dataset, selector, config, telemetry)
        self._execute("pipeline.build", self._build_task_graph())
        self._publish_engine_metrics()

    def _init_state(
        self,
        dataset: PlantDataset,
        selector: Optional[AlgorithmSelector],
        config: Optional[PipelineConfig],
        telemetry: Optional[Telemetry],
    ) -> None:
        """Everything ``__init__`` sets up *before* any scoring runs.

        Shared by the cold build and the checkpoint restore path
        (:meth:`_from_snapshot_state`), which installs snapshotted task
        outputs instead of executing the level DAG.
        """
        self.dataset = dataset
        self.selector = selector or AlgorithmSelector()
        self.config = config or PipelineConfig()
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=self.config.enable_telemetry)
        )
        self._init_instruments()
        # deferred detector observations: the per-call hot path appends a
        # tuple here and publish_stats() folds the batch into the registry
        self._pending_detector_obs: List[Tuple[str, str, bool, float]] = []
        self.health = RunHealth()
        self._sandbox = DetectorSandbox(self.config.sandbox)
        self._graph = CorrespondenceGraph.from_plant(dataset)
        self._traces: Dict[str, List[_Trace]] = {}
        self._phase_candidates: List[OutlierCandidate] = []
        self._env_channels: Dict[str, List[str]] = {}
        self._line_scores: Dict[Tuple[str, int], float] = {}
        self._line_unified: Dict[Tuple[str, int], float] = {}
        self._line_flags: set = set()
        self._batch_group_count = 0
        # Per-task retained state: the persisted fits (scored trace /
        # candidate outputs) and replayable event lists that make the DAG
        # incremental — a refresh re-runs only the dirty tasks, overwrites
        # their entries here, and reassembles everything else from cache.
        self._task_events: Dict[str, List[Tuple[str, object]]] = {}
        self._phase_out: Dict[str, object] = {}
        self._env_out: Dict[str, object] = {}
        self._job_out: Optional[object] = None
        self._line_out: Dict[str, object] = {}
        self._production_out: Optional[object] = None
        self._dead_metric_emitted: set = set()
        self._incr_refreshes = 0
        self._incr_dirty_jobs = 0
        self._incr_dirty_tasks = 0
        self._incr_evicted: Dict[str, int] = {
            "confirm": 0, "support": 0, "candidate_time": 0, "find_candidates": 0,
        }
        self._incr_retained: Dict[str, int] = dict(self._incr_evicted)
        self._incr_instruments_ready = False
        self._cache_enabled = bool(self.config.enable_cache)
        self._stats = PipelineStats()
        self._confirm_cache: Dict[Tuple, LevelConfirmation] = {}
        self._support_cache: Dict[Tuple, SupportResult] = {}
        self._candidate_time_cache: Dict[Tuple, Optional[float]] = {}
        self._candidates_cache: Dict[ProductionLevel, List[OutlierCandidate]] = {}

    # ------------------------------------------------------------------
    # checkpoint snapshot / restore (see repro.core.checkpoint)
    # ------------------------------------------------------------------
    def _snapshot_task_state(self) -> Dict[str, object]:
        """The per-task persisted outputs a snapshot must carry.

        Together with the dataset (re-supplied at resume time) these
        reconstruct every derived store through the exact
        ``_assemble()`` / ``_rebuild_health()`` / ``_build_indexes()``
        path a refresh already uses — the restore path runs no detector.
        """
        return {
            "task_events": {k: list(v) for k, v in self._task_events.items()},
            "phase_out": dict(self._phase_out),
            "env_out": dict(self._env_out),
            "job_out": self._job_out,
            "line_out": dict(self._line_out),
            "production_out": self._production_out,
            "batch_group_count": self._batch_group_count,
            "dead_metric_emitted": set(self._dead_metric_emitted),
            "pending_detector_obs": list(self._pending_detector_obs),
            "engine_stats": self._engine_stats,
        }

    def _snapshot_cache_state(self) -> Dict[str, object]:
        """The confirmation/support/candidate memo tables and counters."""
        return {
            "confirm": dict(self._confirm_cache),
            "support": dict(self._support_cache),
            "candidate_time": dict(self._candidate_time_cache),
            "candidates": dict(self._candidates_cache),
            "stats": self._stats,
        }

    def _snapshot_incremental_state(self) -> Dict[str, object]:
        """The executor-invariant incremental counters of ``stats()``."""
        return {
            "refreshes": self._incr_refreshes,
            "dirty_jobs": self._incr_dirty_jobs,
            "dirty_tasks": self._incr_dirty_tasks,
            "evicted": dict(self._incr_evicted),
            "retained": dict(self._incr_retained),
        }

    @classmethod
    def _from_snapshot_state(
        cls,
        dataset: PlantDataset,
        sections: Dict[str, object],
        selector: Optional[AlgorithmSelector] = None,
        config: Optional[PipelineConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "PlantHierarchyContext":
        """Rebuild a context from snapshot sections without scoring.

        ``dataset`` must be the watermark partition of the plant the
        snapshot was taken on: the canonical task order, the assemble
        loop, and the correspondence graph are all re-derived from it, so
        the restored context is indistinguishable from the one that wrote
        the snapshot — byte-identical reports, health, and stats.
        """
        self = cls.__new__(cls)
        self._init_state(dataset, selector, config, telemetry)
        tasks = cast(Dict[str, object], sections["tasks"])
        self._task_events = {
            k: list(v)
            for k, v in cast(
                Dict[str, List[Tuple[str, object]]], tasks["task_events"]
            ).items()
        }
        self._phase_out = dict(cast(Dict[str, object], tasks["phase_out"]))
        self._env_out = dict(cast(Dict[str, object], tasks["env_out"]))
        self._job_out = tasks["job_out"]
        self._line_out = dict(cast(Dict[str, object], tasks["line_out"]))
        self._production_out = tasks["production_out"]
        self._batch_group_count = cast(int, tasks["batch_group_count"])
        self._dead_metric_emitted = set(
            cast(set, tasks["dead_metric_emitted"])
        )
        self._pending_detector_obs = list(
            cast(
                List[Tuple[str, str, bool, float]], tasks["pending_detector_obs"]
            )
        )
        self._engine_stats = cast(EngineStats, tasks["engine_stats"])
        caches = cast(Dict[str, object], sections["caches"])
        self._confirm_cache = dict(
            cast(Dict[Tuple, LevelConfirmation], caches["confirm"])
        )
        self._support_cache = dict(
            cast(Dict[Tuple, SupportResult], caches["support"])
        )
        self._candidate_time_cache = dict(
            cast(Dict[Tuple, Optional[float]], caches["candidate_time"])
        )
        self._candidates_cache = dict(
            cast(
                Dict[ProductionLevel, List[OutlierCandidate]],
                caches["candidates"],
            )
        )
        self._stats = cast(PipelineStats, caches["stats"])
        incremental = cast(Dict[str, object], sections["incremental"])
        self._incr_refreshes = cast(int, incremental["refreshes"])
        self._incr_dirty_jobs = cast(int, incremental["dirty_jobs"])
        self._incr_dirty_tasks = cast(int, incremental["dirty_tasks"])
        self._incr_evicted = dict(cast(Dict[str, int], incremental["evicted"]))
        self._incr_retained = dict(cast(Dict[str, int], incremental["retained"]))
        with self.telemetry.tracer.span("pipeline.restore"):
            with self.telemetry.tracer.span("pipeline.index"):
                self._assemble()
                self._rebuild_health()
                self._build_indexes()
        self._support_calc = SupportCalculator(
            self._graph,
            self._lookup_trace,
            tolerance=self.config.support_tolerance,
            excluded=self.health.dead_channels,
        )
        self._publish_engine_metrics()
        return self

    def _execute(self, span_name: str, graph: TaskGraph) -> None:
        """Run one task graph and fold its results into the context.

        Shared by the cold build (the full level DAG) and :meth:`refresh`
        (the dirty subgraph): runs the engine, stores per-task outputs and
        event lists, reassembles the derived stores, rebuilds the health
        record by canonical event replay, and re-derives the indexes and
        the support calculator.
        """
        tracer = self.telemetry.tracer
        with tracer.span(span_name, executor=self.config.executor) as outer_span:
            engine = ParallelEngine(
                self.config.executor,
                self.config.max_workers,
                capture_alloc=self.config.perf_alloc,
            )
            if self.config.executor == "process":
                # worker clocks are not comparable with an injected
                # main-process clock: ship the bare worker and graft the
                # returned span trees as roots
                worker: Callable[[object], object] = cast(
                    Callable[[object], object], _run_scoring_task
                )
                parent_id: Optional[int] = None
            else:
                worker = cast(
                    Callable[[object], object],
                    functools.partial(_run_scoring_task, clock=self.telemetry.clock),
                )
                parent_id = outer_span.span_id if tracer.enabled else None
            arena: Optional[shm.ShmArena] = None
            run_graph = graph
            if self.config.executor == "process" and self.config.shm_transport:
                arena, run_graph = _publish_graph_to_shm(graph)
            try:
                results, engine_stats = engine.run(run_graph, worker)
            finally:
                if arena is not None:
                    arena.dispose()
            if arena is not None:
                engine_stats.bytes_shared = arena.total_bytes
                engine_stats.transport_encode_seconds = arena.encode_seconds
            if self.config.executor == "process":
                # what actually crossed the pickle boundary (descriptors
                # only under shm transport; full trace arrays without it)
                engine_stats.bytes_pickled = sum(
                    len(pickle.dumps(task.payload, protocol=pickle.HIGHEST_PROTOCOL))
                    for task in run_graph
                )
            self._engine_stats = engine_stats
            self._merge_results(results, parent_id)
            with tracer.span("pipeline.index"):
                self._assemble()
                self._rebuild_health()
                self._build_indexes()
        self._support_calc = SupportCalculator(
            self._graph,
            self._lookup_trace,
            tolerance=self.config.support_tolerance,
            # renormalized divisor: fully-quarantined channels do not vote
            excluded=self.health.dead_channels,
        )

    def _build_indexes(self) -> None:
        """Precompute the lookup structures behind ``confirm``/``support``.

        Everything here is a pure function of the scored dataset, so it is
        built once and shared by cached and cache-disabled contexts alike:
        only the per-candidate memoization is optional.
        """
        # line / machine resolution: O(1) dict hits instead of line scans
        self._line_by_id = {line.line_id: line for line in self.dataset.lines}
        self._machine_line = {
            m.machine_id: line
            for line in self.dataset.lines
            for m in line.machines
        }
        # per-line job interval index, sorted by start with a running max
        # end: bisect + short backward scan finds every job covering a time
        self._job_intervals: Dict[str, Tuple[List[float], List[float], List]] = {}
        for line in self.dataset.lines:
            spans = self.dataset.job_intervals(line.line_id)
            starts = [s[0] for s in spans]
            run_max_end: List[float] = []
            peak = -math.inf
            for __, end, __, __ in spans:
                peak = max(peak, end)
                run_max_end.append(peak)
            self._job_intervals[line.line_id] = (starts, run_max_end, spans)
        # per-channel traces sorted by start so one bisect finds the cover
        self._trace_starts: Dict[str, List[float]] = {}
        for channel_id, traces in self._traces.items():
            traces.sort(key=lambda t: t.start)
            self._trace_starts[channel_id] = [t.start for t in traces]
        # per-trace robust stats for the environment confirmation
        self._trace_stats: Dict[Tuple[str, float], Tuple[float, float]] = {}
        # phase candidates grouped by machine and (machine, job), plus the
        # sorted outlierness array _confirm_phase previously rebuilt per call
        self._phase_by_machine: Dict[str, List[OutlierCandidate]] = {}
        self._phase_by_machine_job: Dict[Tuple[str, Optional[int]], List[OutlierCandidate]] = {}
        for c in self._phase_candidates:
            self._phase_by_machine.setdefault(c.machine_id, []).append(c)
            self._phase_by_machine_job.setdefault(
                (c.machine_id, c.job_index), []
            ).append(c)
        self._phase_scores_sorted = np.sort(
            np.array([c.outlierness for c in self._phase_candidates], dtype=float)
        )
        # channels with exactly one trace (every environment channel, and
        # most sensors) resolve candidate timestamps without scanning
        self._primary_trace: Dict[str, _Trace] = {
            channel_id: traces[0]
            for channel_id, traces in self._traces.items()
            if len(traces) == 1
        }

    # ------------------------------------------------------------------
    # task graph construction and merge (see repro.core.parallel)
    # ------------------------------------------------------------------
    def _build_task_graph(self, only: Optional[set] = None) -> TaskGraph:
        """Decompose the run into the level DAG.

        Phase scoring per machine, environment scoring per line, the
        global job table, jobs-over-time per line (after the job table,
        per the paper's hierarchy), and the production panel (after all
        lines).  Insertion order mirrors the serial pipeline's historical
        method order — the merge step replays events in this order, which
        is what makes the health record executor-invariant.

        With ``only`` (a set of task keys — the dirty closure of a
        refresh), the graph is restricted to those tasks: others are
        skipped and dependency edges are clamped to the keys actually
        present, preserving relative insertion order.  Task seeds are a
        pure function of the key, so a task scheduled in a restricted
        graph scores exactly as it would in the full one.
        """
        cfg = self.config
        graph = TaskGraph()
        enabled = self.telemetry.enabled

        def add(
            kind: str,
            key: str,
            level: ProductionLevel,
            data: Tuple[object, ...],
            deps: Tuple[str, ...] = (),
        ) -> None:
            if only is not None:
                if key not in only:
                    return
                deps = tuple(dep for dep in deps if dep in graph)
            graph.add(
                Task(
                    key=key,
                    deps=deps,
                    payload=_ScoreTask(
                        kind=kind,
                        key=key,
                        level=level,
                        chain=tuple(self.selector.fallback_chain(level)),
                        config=cfg,
                        seed=derive_task_seed(0, key),
                        telemetry_enabled=enabled,
                        executor=cfg.executor,
                        data=data,
                    ),
                )
            )

        def wanted(key: str) -> bool:
            return only is None or key in only

        for machine in self.dataset.iter_machines():
            if not wanted(f"phase/{machine.machine_id}"):
                continue
            jobs = tuple(
                (
                    job.job_index,
                    tuple(
                        (phase.name, tuple(sorted(phase.series.items())))
                        for phase in job.phases
                    ),
                )
                for job in machine.jobs
            )
            add(
                "phase", f"phase/{machine.machine_id}", ProductionLevel.PHASE,
                (machine.machine_id, jobs),
            )
        for line in self.dataset.lines:
            if not wanted(f"env/{line.line_id}"):
                continue
            items = tuple(
                (f"{line.line_id}/env/{kind}", series)
                for kind, series in sorted(line.environment.items())
            )
            add(
                "env", f"env/{line.line_id}", ProductionLevel.ENVIRONMENT,
                (line.line_id, items),
            )
        if wanted("job"):
            rows: List[np.ndarray] = []
            keys: List[Tuple[str, int]] = []
            for machine in self.dataset.iter_machines():
                table = self.dataset.job_table(machine.machine_id)
                for job, row in zip(machine.jobs, table):
                    rows.append(row)
                    keys.append((machine.machine_id, job.job_index))
            add("job", "job", ProductionLevel.JOB, (tuple(keys), np.vstack(rows)))
        line_keys: List[str] = []
        for line in self.dataset.lines:
            if not wanted(f"line/{line.line_id}"):
                continue
            mat, identity = self.dataset.jobs_over_time(line.line_id)
            if mat.shape[0] == 0:
                continue
            key = f"line/{line.line_id}"
            line_keys.append(key)
            add(
                "line", key, ProductionLevel.PRODUCTION_LINE,
                (line.line_id, mat, tuple(identity)), deps=("job",),
            )
        if wanted("production"):
            panel, machine_ids = self.dataset.production_panel()
            add(
                "production", "production", ProductionLevel.PRODUCTION,
                (panel, tuple(machine_ids)), deps=tuple(line_keys),
            )
        return graph

    def _merge_results(
        self, results: Dict[str, object], parent_id: Optional[int]
    ) -> None:
        """Fold task results into the per-task stores in insertion order.

        Completion order never matters: the engine returns results keyed
        in insertion order, worker event lists replay through the same
        metrics/log paths the serial pipeline used (health is rebuilt
        afterwards by :meth:`_rebuild_health` so refreshed tasks never
        double-record), and span trees graft under the open build/refresh
        span (or as roots for process workers).
        """
        for result in results.values():
            assert isinstance(result, _TaskResult)
            self.telemetry.tracer.graft(result.spans, parent_id=parent_id)
            self._task_events[result.key] = list(result.events)
            for event_kind, payload in result.events:
                self._apply_event(event_kind, payload, health=False)
            self._batch_group_count += result.batch_groups
            if result.transport_seconds:
                self._engine_stats.task_transport_seconds[result.key] = (
                    result.transport_seconds
                )
            output = result.output
            if result.kind == "phase":
                self._phase_out[result.key.split("/", 1)[1]] = output
            elif result.kind == "env":
                self._env_out[result.key.split("/", 1)[1]] = output
            elif result.kind == "job":
                self._job_out = output
            elif result.kind == "line":
                self._line_out[result.key.split("/", 1)[1]] = output
            elif result.kind == "production":
                self._production_out = output
            else:  # pragma: no cover - graph construction is exhaustive
                raise ValueError(f"unknown task kind {result.kind!r}")

    def _assemble(self) -> None:
        """Rebuild the derived stores from the per-task outputs.

        Iterates machines and lines in dataset order — the same order the
        full graph inserts tasks — so an incremental refresh (which
        overwrites only the dirty tasks' outputs) reassembles traces and
        candidates in exactly the order a cold build would have produced.
        """
        self._traces = {}
        self._phase_candidates = []
        self._env_channels = {}
        for machine in self.dataset.iter_machines():
            output = self._phase_out.get(machine.machine_id)
            if output is None:
                continue
            traces, candidates = cast(
                Tuple[List[Tuple[str, _Trace]], List[OutlierCandidate]], output
            )
            for sensor_id, trace in traces:
                self._traces.setdefault(sensor_id, []).append(trace)
            self._phase_candidates.extend(candidates)
        for line in self.dataset.lines:
            output = self._env_out.get(line.line_id)
            if output is None:
                continue
            env_traces, ids = cast(
                Tuple[List[Tuple[str, _Trace]], List[str]], output
            )
            for channel_id, trace in env_traces:
                self._traces.setdefault(channel_id, []).append(trace)
            self._env_channels[line.line_id] = list(ids)
        if self._job_out is not None:
            job_keys, scores, detector_name = cast(
                Tuple[Tuple[Tuple[str, int], ...], np.ndarray, str], self._job_out
            )
            threshold = _robust_threshold(scores, self.config.vector_sigma)
            unified = unify_rank(scores)
            self._job_scores = {
                k: float(s) for k, s in zip(job_keys, scores)
            }
            self._job_unified = {
                k: float(u) for k, u in zip(job_keys, unified)
            }
            self._job_flags = {
                k for k, s in zip(job_keys, scores) if s >= threshold
            }
            self._job_detector = detector_name
        self._line_scores = {}
        self._line_unified = {}
        self._line_flags = set()
        self._finalize_line_level(
            [
                cast(
                    Tuple[Tuple[Tuple[str, int], ...], np.ndarray],
                    self._line_out[line.line_id],
                )
                for line in self.dataset.lines
                if line.line_id in self._line_out
            ]
        )
        if self._production_out is not None:
            machine_ids, scores = cast(
                Tuple[Tuple[str, ...], np.ndarray], self._production_out
            )
            threshold = _robust_threshold(scores, self.config.vector_sigma)
            unified = unify_rank(scores)
            self._machine_scores = {
                m: float(s) for m, s in zip(machine_ids, scores)
            }
            self._machine_unified = {
                m: float(u) for m, u in zip(machine_ids, unified)
            }
            self._machine_flags = {
                m for m, s in zip(machine_ids, scores) if s >= threshold
            }

    def _canonical_task_order(self) -> List[str]:
        """Full-graph insertion order, recomputed from the dataset."""
        order = [f"phase/{m.machine_id}" for m in self.dataset.iter_machines()]
        order.extend(f"env/{line.line_id}" for line in self.dataset.lines)
        order.append("job")
        order.extend(
            f"line/{line.line_id}"
            for line in self.dataset.lines
            if any(m.jobs for m in line.machines)
        )
        order.append("production")
        return order

    def _rebuild_health(self) -> None:
        """Rebuild the health record by replaying cached task events.

        Replay happens in canonical full-graph insertion order over every
        task's *current* event list, so after a refresh the health record
        is byte-identical to a cold build on the mutated dataset: re-run
        tasks contribute their fresh events exactly once, untouched tasks
        contribute their retained events, and first-wins/dedup semantics
        of :class:`RunHealth` see the same sequence either way.
        """
        self.health = RunHealth()
        for key in self._canonical_task_order():
            for event_kind, payload in self._task_events.get(key, ()):
                self._apply_event(event_kind, payload, instruments=False)
        self._flag_dead_channels()

    def _finalize_line_level(
        self,
        outputs: List[Tuple[Tuple[Tuple[str, int], ...], np.ndarray]],
    ) -> None:
        """Pool per-line scores, then threshold and unify globally.

        The line level is flagged against the *production-wide* score
        distribution (one line must not look normal just because its
        siblings are worse), so this stage needs every line task's output
        — the one genuine barrier in the merge.
        """
        all_scores: List[Tuple[Tuple[str, int], float]] = []
        for identity, scores in outputs:
            for key, s in zip(identity, scores):
                all_scores.append((key, float(s)))
        if not all_scores:
            return
        raw = np.array([s for __, s in all_scores])
        threshold = _robust_threshold(raw, self.config.vector_sigma)
        unified = unify_rank(raw)
        for (key, s), u in zip(all_scores, unified):
            self._line_scores[key] = s
            self._line_unified[key] = float(u)
            if s >= threshold:
                self._line_flags.add(key)

    def _apply_event(
        self,
        kind: str,
        payload: object,
        *,
        health: bool = True,
        instruments: bool = True,
    ) -> None:
        """Replay one worker-recorded side effect on the main process.

        Event replay happens in graph insertion order, so the resulting
        health record (which is insertion-ordered and first-wins for
        warnings) is identical to the serial pipeline's regardless of the
        executor or scheduling order.  The two flags separate the event's
        effects: ``instruments`` (metrics, logs, deferred detector
        observations) fires once per *execution* during the merge, while
        ``health`` fires during :meth:`_rebuild_health` replay — a
        refreshed task's events re-count as work done without ever
        duplicating health records.
        """
        if kind == "quarantine":
            channel_id, scope, reason, timestamp = cast(
                Tuple[str, str, str, Optional[float]], payload
            )
            if health:
                self.health.record_quarantine(channel_id, scope, reason)
            if instruments:
                self._m_quarantines.inc(scope="trace")
                self.telemetry.warning(
                    f"quarantined {channel_id} [{scope}]: {reason}",
                    channel_id=channel_id,
                    scope=scope,
                    timestamp=timestamp,
                )
        elif kind == "warn":
            if health:
                self.health.warn(cast(str, payload))
        elif kind == "fallback":
            event = cast(FallbackEvent, payload)
            if health:
                self.health.record_fallback(event)
            if instruments:
                self._m_fallbacks.inc(level=event.level)
                self.telemetry.warning(
                    f"detector fallback at {event.level} {event.unit}: "
                    f"{event.failed_detector} -> {event.fallback} ({event.error})",
                    level=event.level,
                    unit=event.unit,
                    failed_detector=event.failed_detector,
                    fallback=event.fallback,
                    timed_out=event.timed_out,
                )
        elif kind == "terminal":
            level_name = cast(str, payload)
            if health:
                self.health.note_level(
                    level_name, "scored with the terminal robust baseline"
                )
            if instruments:
                self.telemetry.warning(
                    f"level {level_name} scored with the terminal robust baseline",
                    level=level_name,
                )
        elif kind == "obs":
            if instruments:
                self._pending_detector_obs.append(
                    cast(Tuple[str, str, bool, float], payload)
                )
        else:  # pragma: no cover - the worker emits a closed event set
            raise ValueError(f"unknown task event {kind!r}")

    def engine_stats(self) -> EngineStats:
        """Execution-engine cost of the scoring DAG (executor, timings)."""
        return self._engine_stats

    def _publish_engine_metrics(self) -> None:
        """Emit the engine's cost counters (once, at construction time)."""
        es = self._engine_stats
        counts: Dict[str, int] = {}
        latencies: Dict[str, List[float]] = {}
        for key, seconds in es.task_seconds.items():
            kind = key.split("/", 1)[0]
            counts[kind] = counts.get(kind, 0) + 1
            latencies.setdefault(kind, []).append(max(0.0, seconds))
        for kind in sorted(counts):
            self._m_tasks.inc(counts[kind], kind=kind)
            self._m_task_latency.observe_many(latencies[kind], kind=kind)
        self._m_queue_depth.set(float(es.max_queue_depth))
        self._m_parallel_workers.set(float(es.workers), executor=es.executor)
        if math.isfinite(es.speedup):
            self._m_parallel_speedup.set(es.speedup)
        # perf attribution (snapshot-tolerant: pre-perf EngineStats pickles
        # carry neither dict)
        cpu_by_kind: Dict[str, List[float]] = {}
        for key, seconds in getattr(es, "task_cpu_seconds", {}).items():
            cpu_by_kind.setdefault(key.split("/", 1)[0], []).append(
                max(0.0, seconds)
            )
        for kind in sorted(cpu_by_kind):
            self._m_perf_cpu.observe_many(cpu_by_kind[kind], kind=kind)
        alloc_by_kind: Dict[str, List[float]] = {}
        for key, peak in getattr(es, "task_peak_alloc", {}).items():
            alloc_by_kind.setdefault(key.split("/", 1)[0], []).append(
                float(max(0, peak))
            )
        for kind in sorted(alloc_by_kind):
            self._m_perf_alloc.observe_many(alloc_by_kind[kind], kind=kind)
        utilization = es.cpu_utilization if hasattr(es, "task_cpu_seconds") else 0.0
        if math.isfinite(utilization):
            self._m_perf_utilization.set(utilization)
        # transport attribution (snapshot-tolerant like the perf dicts)
        self._m_transport_bytes.set(
            float(getattr(es, "bytes_pickled", 0)), mode="pickled"
        )
        self._m_transport_bytes.set(
            float(getattr(es, "bytes_shared", 0)), mode="shared"
        )
        self._m_transport_overhead.set(
            float(getattr(es, "transport_encode_seconds", 0.0)), stage="encode"
        )
        self._m_transport_overhead.set(
            float(getattr(es, "transport_decode_seconds", 0.0)), stage="decode"
        )

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def _init_instruments(self) -> None:
        """Register this run's metric instruments (no-ops when disabled)."""
        m = self.telemetry.metrics
        self._m_detector_calls = m.counter(
            "repro_detector_calls_total",
            "Sandboxed detector invocations by level, detector, and outcome.",
            labelnames=("level", "detector", "outcome"),
        )
        self._m_detector_latency = m.histogram(
            "repro_detector_latency_seconds",
            "Wall-clock latency of sandboxed detector calls.",
            labelnames=("level",),
        )
        self._m_fallbacks = m.counter(
            "repro_fallbacks_total",
            "Detector failures survived by falling back to the next choice.",
            labelnames=("level",),
        )
        self._m_quarantines = m.counter(
            "repro_quarantines_total",
            "Traces (scope=trace) or whole channels (scope=channel) pulled "
            "from scoring by the data-quality gate.",
            labelnames=("scope",),
        )
        self._m_candidates = m.counter(
            "repro_candidates_total",
            "Outlier candidates found per hierarchy level.",
            labelnames=("level",),
        )
        self._m_confirmations = m.counter(
            "repro_confirmations_total",
            "Cross-level confirmation computations by level and outcome.",
            labelnames=("level", "detected"),
        )
        self._m_support = m.histogram(
            "repro_support",
            "Distribution of computed Algorithm-1 support values.",
            buckets=UNIT_BUCKETS,
        )
        self._m_tasks = m.counter(
            "repro_tasks_total",
            "Scoring tasks executed by the level-DAG engine, by task kind.",
            labelnames=("kind",),
        )
        self._m_task_latency = m.histogram(
            "repro_task_latency_seconds",
            "In-worker wall-clock latency of one scoring task.",
            labelnames=("kind",),
        )
        self._m_queue_depth = m.gauge(
            "repro_task_queue_depth",
            "Peak number of simultaneously ready or in-flight tasks.",
        )
        self._m_parallel_workers = m.gauge(
            "repro_parallel_workers",
            "Worker-pool size the execution engine resolved for this run.",
            labelnames=("executor",),
        )
        self._m_parallel_speedup = m.gauge(
            "repro_parallel_speedup",
            "Compute-seconds over wall-seconds of the scoring task graph.",
        )
        self._m_perf_cpu = m.histogram(
            "repro_perf_task_cpu_seconds",
            "In-worker CPU seconds of one scoring task.",
            labelnames=("kind",),
        )
        self._m_perf_alloc = m.histogram(
            "repro_perf_task_peak_alloc_bytes",
            "Peak tracemalloc allocation inside one scoring task "
            "(populated only when allocation capture is enabled).",
            labelnames=("kind",),
            buckets=BYTE_BUCKETS,
        )
        self._m_perf_utilization = m.gauge(
            "repro_perf_cpu_utilization",
            "CPU seconds per wall second of the scoring task graph.",
        )
        self._m_transport_bytes = m.gauge(
            "repro_transport_bytes",
            "Task-payload bytes moved per engine run, by transport mode "
            "(pickled = crossed the pickle boundary, shared = read from the "
            "shared-memory arena).",
            labelnames=("mode",),
        )
        self._m_transport_overhead = m.gauge(
            "repro_transport_overhead_seconds",
            "Transport overhead per engine run: arena publish (encode) "
            "and summed worker-side payload rebuilds (decode).",
            labelnames=("stage",),
        )

    def stats(self) -> Dict[str, object]:
        """The run's telemetry counters as one nested, documented dict.

        Schema (:data:`STATS_SCHEMA`, documented in docs/OBSERVABILITY.md):
        ``{"schema", "cache": {<memo table>: {"calls", "hits", "misses"}},
        "health": {"degraded", "fallbacks", "quarantines", "dead_channels",
        "warnings", "degraded_levels"}, "parallel": {"tasks",
        "batch_groups"}, "incremental": {"refreshes", "dirty_jobs",
        "dirty_tasks", "evicted": {<memo table>: n}, "retained":
        {<memo table>: n}}}``.  This is the single source the metrics
        registry consumes (:meth:`publish_stats`) and the ``telemetry``
        block of the JSON report export.  Every entry is
        executor-invariant — wall-clock numbers live in
        :meth:`engine_stats` and the metrics registry instead, so stats
        (and therefore serialized reports) stay byte-identical across
        ``serial``/``thread``/``process`` runs.
        """
        health = self.health
        return {
            "schema": STATS_SCHEMA,
            "cache": self._stats.as_nested(),
            "health": {
                "degraded": health.degraded,
                "fallbacks": len(health.fallbacks),
                "quarantines": len(health.quarantines),
                "dead_channels": len(health.dead_channels),
                "warnings": len(health.warnings),
                "degraded_levels": len(health.level_notes),
            },
            "parallel": {
                "tasks": self._engine_stats.n_tasks,
                "batch_groups": self._batch_group_count,
            },
            "incremental": {
                "refreshes": self._incr_refreshes,
                "dirty_jobs": self._incr_dirty_jobs,
                "dirty_tasks": self._incr_dirty_tasks,
                "evicted": dict(self._incr_evicted),
                "retained": dict(self._incr_retained),
            },
        }

    def publish_stats(self) -> None:
        """Fold the :meth:`stats` tree into the metrics registry.

        Cache and health counters become ``repro_stats_*`` gauges plus a
        ``repro_cache_hit_ratio{cache=...}`` gauge per memo table, so one
        Prometheus scrape carries the whole run story.
        """
        self._flush_detector_observations()
        tree = self.stats()
        m = self.telemetry.metrics
        m.import_nested(
            "repro_stats",
            {
                "cache": tree["cache"],
                "health": tree["health"],
                "parallel": tree["parallel"],
                "incremental": tree["incremental"],
            },
        )
        ratio = m.gauge(
            "repro_cache_hit_ratio",
            "Hit ratio per confirmation/support memo table.",
            labelnames=("cache",),
        )
        for cache_name, entry in tree["cache"].items():
            if entry["calls"]:
                ratio.set(entry["hits"] / entry["calls"], cache=cache_name)

    @property
    def cache_stats(self) -> PipelineStats:
        """Deprecated accessor: use ``stats()["cache"]`` instead."""
        warnings.warn(
            "PlantHierarchyContext.cache_stats is deprecated and will be "
            "removed; read stats()['cache'] (one nested schema) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._stats

    def reset_stats(self) -> None:
        self._stats = PipelineStats()

    def invalidate_caches(self) -> None:
        """Drop every memoized result (keeps the precomputed indexes).

        The blunt instrument: everything recomputes on next use.  An
        incremental :meth:`refresh` instead calls :meth:`_evict_dirty`,
        which drops only the entries the dirty subgraph can have changed.
        """
        self._confirm_cache.clear()
        self._support_cache.clear()
        self._candidate_time_cache.clear()
        self._candidates_cache.clear()

    # ------------------------------------------------------------------
    # incremental recomputation (see DESIGN §10)
    # ------------------------------------------------------------------
    def refresh(self) -> Dict[str, object]:
        """Incrementally re-score the dirty subgraph after job ingests.

        Consumes the dataset's dirty set (jobs appended through
        :meth:`~repro.plant.PlantDataset.ingest_job`), maps every dirty
        job to its task-DAG closure — its machine's phase task, plus the
        ancestors and descendants of its line task (``job``, the line's
        jobs-over-time task, and ``production``) — re-runs exactly those
        tasks on the configured executor, and reassembles the derived
        state from the persisted outputs of every untouched task.  Cache
        entries are then evicted *scoped*: only what the dirty subgraph
        can have changed (see :meth:`_evict_dirty`).

        The contract is the one the parallel engine established: after a
        refresh, reports and health are byte-identical to a cold build on
        the mutated dataset, on every executor.  Returns a summary dict
        (dirty jobs/tasks, evicted/retained cache entries, engine wall
        seconds).
        """
        dirty = self.dataset.consume_dirty()
        if not dirty:
            return {"dirty_jobs": 0, "dirty_tasks": 0, "evicted": {}, "retained": {}}
        self._ensure_incremental_instruments()
        dirty_machines: List[str] = []
        for machine_id, __ in dirty:
            if machine_id not in dirty_machines:
                dirty_machines.append(machine_id)
        old_phase_scores = getattr(
            self, "_phase_scores_sorted", np.empty(0, dtype=float)
        )
        old_dead = set(self.health.dead_channels)
        shadow = self._shadow_graph()
        closure: Dict[str, None] = {}
        for machine_id in dirty_machines:
            line_id = self.dataset.line_of(machine_id).line_id
            closure[f"phase/{machine_id}"] = None
            line_key = f"line/{line_id}"
            if line_key in shadow:
                for key in shadow.ancestors(line_key):
                    closure[key] = None
                closure[line_key] = None
                for key in shadow.descendants(line_key):
                    closure[key] = None
            else:  # pragma: no cover - an ingested job implies a line task
                closure["job"] = None
                closure["production"] = None
        graph = self._build_task_graph(only=set(closure))
        self._execute("pipeline.refresh", graph)
        self._publish_engine_metrics()
        phase_changed = not np.array_equal(
            old_phase_scores, self._phase_scores_sorted
        )
        dead_changed = old_dead != set(self.health.dead_channels)
        evicted, retained = self._evict_dirty(
            dirty_machines, phase_changed=phase_changed, dead_changed=dead_changed
        )
        self._incr_refreshes += 1
        self._incr_dirty_jobs += len(dirty)
        self._incr_dirty_tasks += len(graph)
        for table, n in evicted.items():
            self._incr_evicted[table] += n
        for table, n in retained.items():
            self._incr_retained[table] += n
        self._publish_incremental_metrics(dirty, graph, evicted, retained)
        return {
            "dirty_jobs": len(dirty),
            "dirty_tasks": len(graph),
            "task_keys": graph.keys,
            "evicted": evicted,
            "retained": retained,
            "wall_seconds": self._engine_stats.wall_seconds,
        }

    def _shadow_graph(self) -> TaskGraph:
        """The level DAG's shape (keys and edges) without any payloads.

        Cheap to rebuild after every ingest; used only for the
        ancestor/descendant traversals that map dirty jobs to the task
        closure a refresh must re-run.
        """
        graph = TaskGraph()
        for machine in self.dataset.iter_machines():
            graph.add(Task(key=f"phase/{machine.machine_id}", payload=None))
        for line in self.dataset.lines:
            graph.add(Task(key=f"env/{line.line_id}", payload=None))
        graph.add(Task(key="job", payload=None))
        line_keys = []
        for line in self.dataset.lines:
            if any(m.jobs for m in line.machines):
                key = f"line/{line.line_id}"
                line_keys.append(key)
                graph.add(Task(key=key, payload=None, deps=("job",)))
        graph.add(Task(key="production", payload=None, deps=tuple(line_keys)))
        return graph

    def _evict_dirty(
        self,
        dirty_machines: List[str],
        *,
        phase_changed: bool,
        dead_changed: bool,
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Scoped cache eviction: drop only what the refresh can have changed.

        Dependency analysis per memo table (candidate keys are
        ``(level, machine, job, phase, sensor, index)`` tuples):

        * ``confirm`` — confirmations *at* the JOB / PRODUCTION_LINE /
          PRODUCTION levels read the globally recomputed score tables, so
          they always go; confirmations at PHASE read the global sorted
          phase-score distribution and go only when that distribution
          actually changed; confirmations at ENVIRONMENT depend only on
          environment traces and the candidate's own time — both
          untouched by a job ingest — and are retained.
        * ``support`` — a support verdict reads corresponding channels'
          traces *at the candidate's time*; appended jobs occupy new time
          spans and re-scored dirty tasks are deterministic, so verdicts
          survive — unless the dead-channel set changed, which alters the
          renormalized divisor for every candidate and clears the table.
        * ``candidate_time`` — phase-series timestamps and job midpoints
          are immutable for existing jobs; entries are dropped only for
          candidates on re-scored (dirty) machines, conservatively.
        * ``find_candidates`` — PHASE/JOB/PRODUCTION_LINE/PRODUCTION
          listings derive from recomputed state and go; the ENVIRONMENT
          listing derives from untouched environment traces and stays.
        """
        evicted = {"confirm": 0, "support": 0, "candidate_time": 0,
                   "find_candidates": 0}
        dirty_set = set(dirty_machines)
        vector_levels = (
            ProductionLevel.JOB,
            ProductionLevel.PRODUCTION_LINE,
            ProductionLevel.PRODUCTION,
        )
        for key in list(self._confirm_cache):
            __, level = key
            if level in vector_levels or (
                phase_changed and level is ProductionLevel.PHASE
            ):
                del self._confirm_cache[key]
                evicted["confirm"] += 1
        if dead_changed:
            evicted["support"] = len(self._support_cache)
            self._support_cache.clear()
        for key in list(self._candidate_time_cache):
            if key[1] in dirty_set:
                del self._candidate_time_cache[key]
                evicted["candidate_time"] += 1
        for level in list(self._candidates_cache):
            if level is not ProductionLevel.ENVIRONMENT:
                del self._candidates_cache[level]
                evicted["find_candidates"] += 1
        retained = {
            "confirm": len(self._confirm_cache),
            "support": len(self._support_cache),
            "candidate_time": len(self._candidate_time_cache),
            "find_candidates": len(self._candidates_cache),
        }
        return evicted, retained

    def _ensure_incremental_instruments(self) -> None:
        """Register the ``repro_incremental_*`` instruments lazily.

        Lazy so a never-refreshed context exposes exactly the metric
        families it always has — zero-valued incremental families must
        not appear in cold-run expositions.
        """
        if self._incr_instruments_ready:
            return
        self._incr_instruments_ready = True
        m = self.telemetry.metrics
        self._m_incr_refreshes = m.counter(
            "repro_incremental_refreshes_total",
            "Incremental subgraph refreshes triggered by job ingests.",
        )
        self._m_incr_dirty_jobs = m.counter(
            "repro_incremental_dirty_jobs_total",
            "Ingested jobs consumed by incremental refreshes.",
        )
        self._m_incr_tasks = m.counter(
            "repro_incremental_tasks_total",
            "Dirty-closure tasks re-run by incremental refreshes, by kind.",
            labelnames=("kind",),
        )
        self._m_incr_evicted = m.counter(
            "repro_incremental_evicted_total",
            "Cache entries dropped by scoped eviction, by memo table.",
            labelnames=("table",),
        )
        self._m_incr_retained = m.counter(
            "repro_incremental_retained_total",
            "Cache entries retained across a refresh, by memo table.",
            labelnames=("table",),
        )
        self._m_incr_latency = m.histogram(
            "repro_incremental_refresh_latency_seconds",
            "Engine wall-clock latency of one incremental refresh.",
        )

    def _publish_incremental_metrics(
        self,
        dirty: List[Tuple[str, int]],
        graph: TaskGraph,
        evicted: Dict[str, int],
        retained: Dict[str, int],
    ) -> None:
        self._m_incr_refreshes.inc()
        self._m_incr_dirty_jobs.inc(len(dirty))
        kinds: Dict[str, int] = {}
        for key in graph.keys:
            kind = key.split("/", 1)[0]
            kinds[kind] = kinds.get(kind, 0) + 1
        for kind in sorted(kinds):
            self._m_incr_tasks.inc(kinds[kind], kind=kind)
        for table in sorted(evicted):
            if evicted[table]:
                self._m_incr_evicted.inc(evicted[table], table=table)
        for table in sorted(retained):
            if retained[table]:
                self._m_incr_retained.inc(retained[table], table=table)
        self._m_incr_latency.observe(max(0.0, self._engine_stats.wall_seconds))

    def _flush_detector_observations(self) -> None:
        """Fold deferred detector observations into the metrics registry.

        Batching keeps registry lookups and histogram label resolution off
        the per-detector hot path: counts aggregate in plain dicts here and
        land with one ``inc``/``observe_many`` per label set.
        """
        pending = self._pending_detector_obs
        if not pending:
            return
        self._pending_detector_obs = []
        call_counts: Dict[Tuple[str, str, str], int] = {}
        latencies: Dict[str, List[float]] = {}
        for level_name, detector, ok, elapsed in pending:
            key = (level_name, detector, "ok" if ok else "error")
            call_counts[key] = call_counts.get(key, 0) + 1
            latencies.setdefault(level_name, []).append(max(0.0, elapsed))
        for (level_name, detector, outcome_label), n in sorted(call_counts.items()):
            self._m_detector_calls.inc(
                n, level=level_name, detector=detector, outcome=outcome_label
            )
        for level_name, values in sorted(latencies.items()):
            self._m_detector_latency.observe_many(values, level=level_name)

    def _flag_dead_channels(self) -> None:
        """Channels with zero surviving traces are quarantined wholesale.

        These are the sensors the support divisor must renormalize over:
        with no usable trace anywhere they cannot vote, and the explicit
        ``scope="channel"`` record feeds :attr:`RunHealth.dead_channels`
        (belt and braces on top of the lookup's natural None-vote).  The
        health record is re-derived on every :meth:`_rebuild_health`, but
        the channel-death metric and log line fire once per channel per
        context lifetime — refreshes must not re-count a death already
        reported."""
        for channel_id in sorted({q.channel_id for q in self.health.quarantines}):
            if not self._traces.get(channel_id):
                self.health.record_quarantine(
                    channel_id, "channel",
                    "no usable trace survived the quality gate",
                )
                if channel_id in self._dead_metric_emitted:
                    continue
                self._dead_metric_emitted.add(channel_id)
                self._m_quarantines.inc(scope="channel")
                self.telemetry.warning(
                    f"dead channel {channel_id}: no usable trace survived "
                    "the quality gate; removed from the support divisor",
                    channel_id=channel_id,
                    scope="channel",
                )

    # ------------------------------------------------------------------
    # trace lookup (support + environment confirmation)
    # ------------------------------------------------------------------
    def _lookup_trace(
        self, channel_id: str, time: float
    ) -> Optional[Tuple[np.ndarray, float, float, float]]:
        traces = self._traces.get(channel_id)
        if not traces:
            return None
        # traces are sorted by start and non-overlapping per channel, so the
        # rightmost trace starting at or before `time` is the only candidate
        i = bisect_right(self._trace_starts[channel_id], time) - 1
        if i >= 0 and traces[i].covers(time):
            trace = traces[i]
            return trace.scores, trace.threshold, trace.start, trace.step
        return None

    def _candidate_time(self, candidate: OutlierCandidate) -> Optional[float]:
        self._stats.candidate_time_calls += 1
        key = candidate.key
        if key in self._candidate_time_cache:
            self._stats.candidate_time_hits += 1
            return self._candidate_time_cache[key]
        time = self._candidate_time_uncached(candidate)
        if self._cache_enabled:
            self._candidate_time_cache[key] = time
        return time

    def _candidate_time_uncached(self, candidate: OutlierCandidate) -> Optional[float]:
        if candidate.index is not None and "/env/" in candidate.sensor_id:
            # environment candidates live on the line-wide trace; single-trace
            # channels (the common case) resolve through the O(1) primary
            # index, multi-trace channels keep the first-match scan
            primary = self._primary_trace.get(candidate.sensor_id)
            if primary is not None:
                if candidate.index < len(primary.scores):
                    return primary.start + candidate.index * primary.step
                return None
            for trace in self._traces.get(candidate.sensor_id, ()):
                if candidate.index < len(trace.scores):
                    return trace.start + candidate.index * trace.step
            return None
        if candidate.index is None or not candidate.sensor_id:
            if candidate.job_index is None:
                return None
            job = self.dataset.find_job(candidate.machine_id, candidate.job_index)
            if job is None:
                # explicit membership check: a candidate pointing at a job
                # the dataset does not know is a data defect worth surfacing,
                # not a silent un-timestamped candidate
                self.health.warn(
                    f"candidate references unknown job "
                    f"{candidate.machine_id}/job{candidate.job_index}; "
                    "skipping its timestamp"
                )
                return None
            return (job.start + job.end) / 2.0
        trace = self._traces.get(candidate.sensor_id)
        if not trace:
            return None
        phase = self.dataset.phase_series(
            candidate.machine_id, candidate.job_index, candidate.phase_name
        )
        any_series = phase.series[candidate.sensor_id]
        return any_series.start + candidate.index * any_series.step

    def _line_of_candidate(self, candidate: OutlierCandidate) -> Optional[LineRecord]:
        """The line a candidate belongs to (environment candidates carry the
        line id in the machine_id field)."""
        line = self._line_by_id.get(candidate.machine_id)
        if line is not None:
            return line
        return self._machine_line.get(candidate.machine_id)

    # ------------------------------------------------------------------
    # HierarchyContext interface
    # ------------------------------------------------------------------
    def find_candidates(self, level: ProductionLevel) -> List[OutlierCandidate]:
        self._stats.find_candidates_calls += 1
        cached = self._candidates_cache.get(level)
        if cached is not None:
            self._stats.find_candidates_hits += 1
            return list(cached)
        with self.telemetry.tracer.span(
            "find_candidates", level=level.name
        ) as sp:
            result = self._find_candidates_uncached(level)
            sp.set(n_candidates=len(result))
        self._m_candidates.inc(len(result), level=level.name)
        if self._cache_enabled:
            self._candidates_cache[level] = result
            return list(result)
        return result

    def _find_candidates_uncached(
        self, level: ProductionLevel
    ) -> List[OutlierCandidate]:
        if level is ProductionLevel.PHASE:
            return list(self._phase_candidates)
        if level is ProductionLevel.JOB:
            return [
                OutlierCandidate(
                    level=level,
                    outlierness=self._job_scores[key],
                    machine_id=key[0],
                    job_index=key[1],
                    detector=self._job_detector,
                )
                for key in sorted(self._job_flags)
            ]
        if level is ProductionLevel.ENVIRONMENT:
            out = []
            for line in self.dataset.lines:
                for channel_id in self._env_channels[line.line_id]:
                    for trace in self._traces.get(channel_id, ()):
                        for idx in _peak_indices(
                            trace.scores, trace.threshold,
                            self.config.candidate_gap,
                            self.config.max_candidates_per_trace,
                        ):
                            out.append(
                                OutlierCandidate(
                                    level=level,
                                    outlierness=float(trace.scores[idx]),
                                    machine_id=line.line_id,
                                    sensor_id=channel_id,
                                    index=idx,
                                )
                            )
            return out
        if level is ProductionLevel.PRODUCTION_LINE:
            return [
                OutlierCandidate(
                    level=level,
                    outlierness=self._line_scores[key],
                    machine_id=key[0],
                    job_index=key[1],
                )
                for key in sorted(self._line_flags)
            ]
        if level is ProductionLevel.PRODUCTION:
            return [
                OutlierCandidate(
                    level=level,
                    outlierness=self._machine_scores[m],
                    machine_id=m,
                )
                for m in sorted(self._machine_flags)
            ]
        raise ValueError(f"unknown level {level!r}")

    def _is_line_scoped(self, candidate: OutlierCandidate) -> bool:
        return candidate.machine_id in self._line_by_id

    def _jobs_in_window(self, candidate: OutlierCandidate) -> List[Tuple[str, int]]:
        """(machine, job) keys of the candidate line's jobs near its time."""
        line = self._line_of_candidate(candidate)
        if line is None:
            return []
        time = self._candidate_time(candidate)
        starts, run_max_end, spans = self._job_intervals[line.line_id]
        if time is None:
            return [(machine_id, job_index) for __, __, machine_id, job_index in spans]
        eps = 1e-9
        keys = []
        # jobs with start <= time + eps, walked right-to-left; the running
        # max end bounds how far left a covering interval can still sit
        i = bisect_right(starts, time + eps) - 1
        while i >= 0 and run_max_end[i] >= time - eps:
            __, end, machine_id, job_index = spans[i]
            if end >= time - eps:
                keys.append((machine_id, job_index))
            i -= 1
        keys.reverse()
        return keys

    def _confirm_line_scoped(self, candidate: OutlierCandidate,
                             level: ProductionLevel) -> LevelConfirmation:
        """Cross-level checks for environment (line-scoped) candidates."""
        if level is ProductionLevel.JOB:
            keys = self._jobs_in_window(candidate)
            hits = [k for k in keys if k in self._job_flags]
            best = max((self._job_unified.get(k, 0.0) for k in keys), default=0.0)
            return LevelConfirmation(
                level, bool(hits), best,
                note=f"{len(hits)} concurrent job(s) flagged" if hits else "",
            )
        if level is ProductionLevel.PRODUCTION_LINE:
            keys = self._jobs_in_window(candidate)
            hits = [k for k in keys if k in self._line_flags]
            best = max((self._line_unified.get(k, 0.0) for k in keys), default=0.0)
            return LevelConfirmation(level, bool(hits), best)
        if level is ProductionLevel.PRODUCTION:
            line = self._line_of_candidate(candidate)
            machines = [m.machine_id for m in line.machines] if line else []
            hits = [m for m in machines if m in self._machine_flags]
            best = max(
                (self._machine_unified.get(m, 0.0) for m in machines), default=0.0
            )
            return LevelConfirmation(level, bool(hits), best)
        raise ValueError(f"unexpected line-scoped level {level!r}")

    def confirm(self, candidate: OutlierCandidate,
                level: ProductionLevel) -> LevelConfirmation:
        self._stats.confirm_calls += 1
        key = (candidate.key, level)
        cached = self._confirm_cache.get(key)
        if cached is not None:
            self._stats.confirm_hits += 1
            return cached
        level_name = getattr(level, "name", str(level))
        with self.telemetry.tracer.span(
            "confirm", level=level_name, candidate=candidate.location
        ) as sp:
            result = self._confirm_uncached(candidate, level)
            sp.set(detected=result.detected)
        self._m_confirmations.inc(
            level=level_name, detected=str(bool(result.detected)).lower()
        )
        if self._cache_enabled:
            self._confirm_cache[key] = result
        return result

    def _confirm_uncached(self, candidate: OutlierCandidate,
                          level: ProductionLevel) -> LevelConfirmation:
        if (
            self._is_line_scoped(candidate)
            and level in (
                ProductionLevel.JOB,
                ProductionLevel.PRODUCTION_LINE,
                ProductionLevel.PRODUCTION,
            )
        ):
            return self._confirm_line_scoped(candidate, level)
        key = (candidate.machine_id, candidate.job_index)
        if level is ProductionLevel.JOB:
            detected = key in self._job_flags
            return LevelConfirmation(
                level, detected, self._job_unified.get(key, 0.0),
                note="CAQ+setup row flagged" if detected else "job row normal",
            )
        if level is ProductionLevel.ENVIRONMENT:
            return self._confirm_environment(candidate)
        if level is ProductionLevel.PRODUCTION_LINE:
            detected = key in self._line_flags
            return LevelConfirmation(
                level, detected, self._line_unified.get(key, 0.0),
                note="jobs-over-time row flagged" if detected else "",
            )
        if level is ProductionLevel.PRODUCTION:
            detected = candidate.machine_id in self._machine_flags
            return LevelConfirmation(
                level, detected,
                self._machine_unified.get(candidate.machine_id, 0.0),
                note="machine KPI flagged" if detected else "",
            )
        if level is ProductionLevel.PHASE:
            return self._confirm_phase(candidate)
        raise ValueError(f"unknown level {level!r}")

    def _confirm_environment(self, candidate: OutlierCandidate) -> LevelConfirmation:
        time = self._candidate_time(candidate)
        level = ProductionLevel.ENVIRONMENT
        if time is None:
            return LevelConfirmation(level, False, 0.0, note="no timestamp")
        line = self._line_of_candidate(candidate)
        if line is None:
            return LevelConfirmation(level, False, 0.0, note="unknown line")
        tol = max(self.config.support_tolerance, 4.0)
        best = 0.0
        detected = False
        for channel_id in self._env_channels[line.line_id]:
            entry = self._lookup_trace(channel_id, time)
            if entry is None:
                continue
            scores, threshold, start, step = entry
            lo, hi = window_bounds(time, tol, start, step, len(scores))
            if hi <= lo:
                continue
            window = scores[lo:hi]
            peak = float(window.max())
            med, spread = self._trace_med_spread(channel_id, start, scores)
            best = max(best, min(1.0, max(0.0, (peak - med) / (spread * 10.0))))
            if peak >= threshold:
                detected = True
        return LevelConfirmation(
            level, detected, best,
            note="environment anomaly in window" if detected else "",
        )

    def _trace_med_spread(
        self, channel_id: str, start: float, scores: np.ndarray
    ) -> Tuple[float, float]:
        """Median / MAD spread of one trace, computed once per trace."""
        key = (channel_id, start)
        cached = self._trace_stats.get(key)
        if cached is None:
            med = float(np.median(scores))
            spread = float(np.median(np.abs(scores - med))) * 1.4826 or 1.0
            cached = (med, spread)
            self._trace_stats[key] = cached
        return cached

    def _confirm_phase(self, candidate: OutlierCandidate) -> LevelConfirmation:
        level = ProductionLevel.PHASE
        line = self._line_of_candidate(candidate)
        line_machines = (
            {m.machine_id for m in line.machines} if line is not None else set()
        )
        if candidate.machine_id in line_machines or line is None:
            # machine-scoped candidate: match its machine (and job when known)
            if candidate.job_index is None:
                matches = self._phase_by_machine.get(candidate.machine_id, [])
            else:
                matches = self._phase_by_machine_job.get(
                    (candidate.machine_id, candidate.job_index), []
                )
        else:
            # line-scoped candidate (environment level): any machine of the
            # line with a phase-level sighting near the candidate's time
            time = self._candidate_time(candidate)
            tol = max(self.config.support_tolerance * 4, 32.0)
            matches = []
            for machine in line.machines:
                for c in self._phase_by_machine.get(machine.machine_id, ()):
                    c_time = self._candidate_time(c)
                    if time is None or c_time is None or abs(c_time - time) <= tol:
                        matches.append(c)
        if not matches:
            return LevelConfirmation(level, False, 0.0, note="no phase anomaly")
        best = max(c.outlierness for c in matches)
        # rank of `best` among all phase scores == (scores <= best).mean()
        n = len(self._phase_scores_sorted)
        unified = float(
            np.searchsorted(self._phase_scores_sorted, best, side="right")
        ) / n
        return LevelConfirmation(
            level, True, unified,
            note=f"{len(matches)} phase-level candidate(s) in job",
        )

    def support(self, candidate: OutlierCandidate) -> SupportResult:
        self._stats.support_calls += 1
        key = candidate.key
        cached = self._support_cache.get(key)
        if cached is not None:
            self._stats.support_hits += 1
            return cached
        with self.telemetry.tracer.span(
            "support", candidate=candidate.location
        ) as sp:
            result = self._support_uncached(candidate)
            sp.set(
                support=float(result.support),
                n_corresponding=result.n_corresponding,
            )
        self._m_support.observe(float(result.support))
        if self._cache_enabled:
            self._support_cache[key] = result
        return result

    def _support_uncached(self, candidate: OutlierCandidate) -> SupportResult:
        if not candidate.sensor_id:
            return SupportResult(0.0, 0, ())
        time = self._candidate_time(candidate)
        if time is None:
            return SupportResult(0.0, 0, ())
        return self._support_calc.support_for(candidate.sensor_id, time)

    # convenience accessors used by benches -----------------------------
    @property
    def phase_candidates(self) -> List[OutlierCandidate]:
        return list(self._phase_candidates)

    @property
    def correspondence_graph(self) -> CorrespondenceGraph:
        return self._graph


class HierarchicalDetectionPipeline:
    """Public facade: simulate-once, then query hierarchical reports."""

    def __init__(
        self,
        dataset: PlantDataset,
        selector: Optional[AlgorithmSelector] = None,
        config: Optional[PipelineConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or PipelineConfig()
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=self.config.enable_telemetry)
        )
        self.context = PlantHierarchyContext(
            dataset, selector, self.config, telemetry=self.telemetry
        )
        self.checkpoint = self._build_checkpoint_manager()
        if self.checkpoint is not None:
            self.checkpoint.snapshot(trigger="build")

    def _build_checkpoint_manager(self) -> Optional["CheckpointManager"]:
        """Bind a :class:`~repro.core.checkpoint.CheckpointManager` when
        ``config.checkpoint_dir`` is set (imported lazily: the checkpoint
        module depends on this one)."""
        if self.config.checkpoint_dir is None:
            return None
        from .checkpoint import CheckpointManager, SnapshotStore

        return CheckpointManager(
            pipeline=self,
            store=SnapshotStore(
                self.config.checkpoint_dir,
                retain=self.config.checkpoint_retain,
                telemetry=self.telemetry,
            ),
            every=max(1, self.config.checkpoint_every),
        )

    @classmethod
    def _resumed(
        cls,
        dataset: PlantDataset,
        sections: Dict[str, object],
        selector: Optional[AlgorithmSelector] = None,
        config: Optional[PipelineConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "HierarchicalDetectionPipeline":
        """Build a pipeline around a snapshot-restored context.

        Used by :func:`repro.core.checkpoint.resume_pipeline`; never runs
        the cold build and never writes a snapshot of its own until the
        first post-restore refresh.
        """
        self = cls.__new__(cls)
        self.dataset = dataset
        self.config = config or PipelineConfig()
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=self.config.enable_telemetry)
        )
        self.context = PlantHierarchyContext._from_snapshot_state(
            dataset, sections, selector, self.config, telemetry=self.telemetry
        )
        self.checkpoint = self._build_checkpoint_manager()
        return self

    def run(
        self,
        start_level: ProductionLevel = ProductionLevel.PHASE,
        fusion_strategy: Optional[str] = None,
        unify_method: str = "rank",
    ) -> List[HierarchicalOutlierReport]:
        """Algorithm 1 from ``start_level``, reports ranked best-first.

        ``unify_method`` controls how the start-level outlierness batch is
        mapped to [0, 1] (``"rank"`` by default — note this differs from
        the ``"gaussian"`` default of the low-level ``unify()`` helper).
        Repeated calls reuse the context's confirmation/support caches;
        see :meth:`stats`.
        """
        fusion = fusion_strategy or self.config.fusion_strategy
        with self.telemetry.tracer.span(
            "alg1.run",
            start_level=start_level.name,
            fusion=fusion,
            unify=unify_method,
        ) as sp:
            reports = find_hierarchical_outliers(
                self.context,
                start_level,
                fusion_strategy=fusion,
                unify_method=unify_method,
            )
            ranked = rank_reports(reports)
            sp.set(n_reports=len(ranked))
        self._publish_run_metrics(start_level, ranked)
        return ranked

    def _publish_run_metrics(
        self,
        start_level: ProductionLevel,
        reports: List[HierarchicalOutlierReport],
    ) -> None:
        m = self.telemetry.metrics
        m.counter(
            "repro_runs_total", "Algorithm-1 runs executed.",
            labelnames=("start_level",),
        ).inc(start_level=start_level.name)
        m.counter(
            "repro_reports_total", "Hierarchical outlier reports emitted.",
        ).inc(len(reports))
        warnings_total = m.counter(
            "repro_measurement_warnings_total",
            "Reports carrying the wrong-measurement warning.",
        )
        confirmed = m.counter(
            "repro_confirmed_levels_total",
            "Level confirmations attached to emitted reports, by outcome.",
            labelnames=("level", "detected"),
        )
        for report in reports:
            if report.measurement_warning:
                warnings_total.inc()
            for conf in report.confirmations:
                confirmed.inc(
                    level=conf.level.name,
                    detected=str(bool(conf.detected)).lower(),
                )
        self.context.publish_stats()

    def ingest_job(self, machine_id: str, job: JobRecord) -> Dict[str, object]:
        """Ingest one arriving job and incrementally refresh the context.

        Routes the mutation through
        :meth:`~repro.plant.PlantDataset.ingest_job` (the one sanctioned
        mutation path) and immediately consumes the dirty set with
        :meth:`PlantHierarchyContext.refresh`, re-scoring only the job's
        task-DAG closure.  The next :meth:`run` produces reports
        byte-identical to a cold pipeline built on the mutated dataset,
        on every executor.  Returns the refresh summary dict.
        """
        self.dataset.ingest_job(machine_id, job)
        return self.refresh()

    def refresh(self) -> Dict[str, object]:
        """Consume pending dataset ingests via an incremental refresh.

        When checkpointing is enabled, every ``checkpoint_every``-th
        non-empty refresh is followed by a snapshot — the crash-recovery
        point the chaos harness SIGKILLs at.
        """
        summary = self.context.refresh()
        if self.checkpoint is not None and summary.get("dirty_jobs"):
            self.checkpoint.after_refresh()
        return summary

    @property
    def health(self) -> RunHealth:
        """Structured degradation record of the run (fallbacks, quarantines)."""
        return self.context.health

    def stats(self) -> Dict[str, object]:
        """The unified nested stats dict (see :data:`STATS_SCHEMA`)."""
        return self.context.stats()

    def flat_baseline(self) -> List[HierarchicalOutlierReport]:
        """Single-level baseline: phase candidates ranked by outlierness only.

        Reports carry global score 1 and neutral support, exactly what a
        non-hierarchical detector could know.
        """
        candidates = self.context.find_candidates(ProductionLevel.PHASE)
        if not candidates:
            return []
        unified = unify_rank([c.outlierness for c in candidates])
        reports = [
            HierarchicalOutlierReport(
                candidate=c,
                global_score=1,
                outlierness=float(u),
                support=0.0,
                n_corresponding=0,
                fused_score=float(u),
            )
            for c, u in zip(candidates, unified)
        ]
        return sorted(reports, key=lambda r: r.outlierness, reverse=True)
