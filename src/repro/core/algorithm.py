"""Algorithm 1 — ``FindHierarchicalOutlier`` — faithfully implemented.

The paper's pseudo-code::

    FindHierarchicalOutlier(TS, LV):
        algorithm := ChooseAlgorithm(startLevel)
        outlierList := CalculateOutlier(algorithm, startLevel, TS)
        foreach outlier in outlierList:
            foreach sensor in correspondingSensors:
                if sensor supports outlier: support++
        support /= Number of Corresponding Sensors
        outlierness := CalcOutlierness(algorithm)
        globalScore := CalcGlobalScore(level++, true)
        CalcGlobalScore(level--, false)

    CalcGlobalScore(level, up):
        algorithm = ChooseAlgorithm(level); CalculateOutlier(algorithm, level)
        if up:   if outlier detected in level: globalScore++; recurse up
        else:    if NO outlier detected in level: warn wrong measurement
                 else: recurse down

``ChooseAlgorithm`` / ``CalculateOutlier`` / the corresponding-sensor check
live behind the :class:`HierarchyContext` interface so the recursion logic
here is exactly the paper's, independent of the data source (the plant
pipeline provides the production implementation).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

from .fusion import fuse
from .levels import ProductionLevel
from .outlier import (
    HierarchicalOutlierReport,
    LevelConfirmation,
    OutlierCandidate,
)
from .scores import unify
from .support import SupportResult

__all__ = ["HierarchyContext", "calc_global_score", "find_hierarchical_outliers"]


class HierarchyContext(abc.ABC):
    """The data-source interface Algorithm 1 runs against.

    ``confirm`` and ``support`` are pure functions of the candidate's
    *location* (its :attr:`~repro.core.OutlierCandidate.key`) — Algorithm 1
    walks the same levels for every candidate and callers re-run it freely,
    so contexts are encouraged to memoize both on that key (the plant
    context does; see :meth:`PlantHierarchyContext.stats`).
    """

    @abc.abstractmethod
    def find_candidates(self, level: ProductionLevel) -> List[OutlierCandidate]:
        """CalculateOutlier(ChooseAlgorithm(level), level) — all outliers
        the level's detector finds."""

    @abc.abstractmethod
    def confirm(self, candidate: OutlierCandidate,
                level: ProductionLevel) -> LevelConfirmation:
        """Is the candidate's context outlying at ``level``?"""

    @abc.abstractmethod
    def support(self, candidate: OutlierCandidate) -> SupportResult:
        """The corresponding-sensor loop of Algorithm 1."""

    def stats(self) -> Dict[str, int]:
        """Instrumentation counters (cache hits/misses, call counts).

        Contexts that do not instrument themselves report nothing.
        """
        return {}

    def level_score(self, candidate: OutlierCandidate,
                    level: ProductionLevel) -> float:
        """Unified outlierness of the candidate's context at ``level``.

        Defaults to the confirmation's outlierness; contexts may override
        with calibrated scores.
        """
        return self.confirm(candidate, level).outlierness


def calc_global_score(
    context: HierarchyContext,
    candidate: OutlierCandidate,
    start_level: ProductionLevel,
) -> Tuple[int, Tuple[LevelConfirmation, ...], bool, str]:
    """The paper's CalcGlobalScore recursion, both directions.

    Upward: every consecutive confirming level increments the global score;
    the walk stops at the first non-confirming level.  Downward: outliers
    visible at a high level must be visible below; the first non-confirming
    lower level raises the measurement-error warning ("if no outlier can be
    found at a lower level, but in a higher level, a measurement error must
    be assumed").
    """
    confirmations: List[LevelConfirmation] = []
    global_score = 1  # the start level itself noticed the outlier

    level = start_level.up()
    while level is not None:
        conf = context.confirm(candidate, level)
        confirmations.append(conf)
        if not conf.detected:
            break
        global_score += 1
        level = level.up()

    warning = False
    reason = ""
    level = start_level.down()
    while level is not None:
        conf = context.confirm(candidate, level)
        confirmations.append(conf)
        if not conf.detected:
            warning = True
            reason = (
                f"outlier noticed at {start_level} but not at {level}: "
                "wrong measurement assumed"
            )
            break
        global_score += 1  # a confirming lower level is still a confirmation
        level = level.down()

    return global_score, tuple(confirmations), warning, reason


def find_hierarchical_outliers(
    context: HierarchyContext,
    start_level: ProductionLevel,
    fusion_strategy: str = "weighted",
    unify_method: str = "rank",
) -> List[HierarchicalOutlierReport]:
    """FindHierarchicalOutlier(TS, LV) for every outlier at ``start_level``.

    Returns one report per candidate, carrying the paper's triple plus the
    fused cross-level score (the future-work extension).  Outlierness is
    unified across the candidate batch so reports are mutually comparable.

    Note: ``unify_method`` defaults to ``"rank"`` here (distribution-free,
    the safe choice when mixing detectors across a whole level), while the
    lower-level :func:`repro.core.scores.unify` helper defaults to
    ``"gaussian"`` — pass the method explicitly when the distinction
    matters.
    """
    candidates = context.find_candidates(start_level)
    if not candidates:
        return []
    unified = unify([c.outlierness for c in candidates], method=unify_method)

    reports: List[HierarchicalOutlierReport] = []
    for candidate, outlierness in zip(candidates, unified):
        support_result = context.support(candidate)
        global_score, confirmations, warning, reason = calc_global_score(
            context, candidate, start_level
        )
        level_scores = {start_level: float(outlierness)}
        for conf in confirmations:
            level_scores[conf.level] = min(1.0, max(0.0, conf.outlierness))
        fused = fuse(level_scores, strategy=fusion_strategy)
        reports.append(
            HierarchicalOutlierReport(
                candidate=candidate,
                global_score=global_score,
                outlierness=float(outlierness),
                support=support_result.support,
                n_corresponding=support_result.n_corresponding,
                supporters=support_result.supporters,
                confirmations=confirmations,
                measurement_warning=warning,
                warning_reason=reason,
                fused_score=fused,
            )
        )
    return reports
