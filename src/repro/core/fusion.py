"""Cross-level evidence fusion.

"The aim of future work will be to combine outlier information from the
different levels in a valuable manner" (Section 2).  This module implements
that future work: strategies that turn the per-level unified outlierness
values of one candidate into a single fused score.  All inputs are unified
scores in [0, 1] (see :mod:`repro.core.scores`); all outputs are in [0, 1].
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping

from scipy.stats import chi2

from .levels import ProductionLevel

__all__ = [
    "fuse",
    "fuse_max",
    "fuse_mean",
    "fuse_weighted",
    "fuse_fisher",
    "FUSION_STRATEGIES",
    "DEFAULT_LEVEL_WEIGHTS",
]

#: Default level weights for the weighted strategy: aggregated levels carry
#: more evidence per confirmation (an anomalous machine KPI implies many
#: anomalous samples), so weight grows with the level.
DEFAULT_LEVEL_WEIGHTS: Dict[ProductionLevel, float] = {
    ProductionLevel.PHASE: 1.0,
    ProductionLevel.JOB: 1.25,
    ProductionLevel.ENVIRONMENT: 0.75,
    ProductionLevel.PRODUCTION_LINE: 1.5,
    ProductionLevel.PRODUCTION: 1.75,
}


def _validate(level_scores: Mapping[ProductionLevel, float]) -> Dict[ProductionLevel, float]:
    if not level_scores:
        raise ValueError("need at least one level score to fuse")
    out = {}
    for level, score in level_scores.items():
        if not isinstance(level, ProductionLevel):
            raise TypeError(f"keys must be ProductionLevel, got {type(level).__name__}")
        if not (0.0 <= score <= 1.0) or math.isnan(score):
            raise ValueError(f"score for {level} must be in [0, 1], got {score}")
        out[level] = float(score)
    return out


def fuse_max(level_scores: Mapping[ProductionLevel, float]) -> float:
    """The strongest single level decides (optimistic, noise-sensitive)."""
    return max(_validate(level_scores).values())


def fuse_mean(level_scores: Mapping[ProductionLevel, float]) -> float:
    """Plain average across levels (conservative)."""
    scores = _validate(level_scores)
    return sum(scores.values()) / len(scores)


def fuse_weighted(
    level_scores: Mapping[ProductionLevel, float],
    weights: Mapping[ProductionLevel, float] | None = None,
) -> float:
    """Weighted average with level-dependent evidence weights.

    ``weights=None`` selects :data:`DEFAULT_LEVEL_WEIGHTS`; an explicitly
    passed mapping is honoured as-is (levels it omits weigh 1.0, so an
    empty mapping means an unweighted mean, *not* the defaults).  A weight
    set that zeroes out every present level is a configuration error and
    raises instead of silently fusing to 0.0.
    """
    scores = _validate(level_scores)
    w = DEFAULT_LEVEL_WEIGHTS if weights is None else weights
    num = 0.0
    den = 0.0
    for level, score in scores.items():
        weight = float(w.get(level, 1.0))
        if weight < 0:
            raise ValueError(f"negative weight for {level}")
        num += weight * score
        den += weight
    if den <= 0.0:
        raise ValueError(
            "all level weights are zero for the levels present; cannot fuse"
        )
    return num / den


def fuse_fisher(level_scores: Mapping[ProductionLevel, float]) -> float:
    """Fisher's method over per-level p-values (p = 1 - unified score).

    Treats each level as an independent test of "this candidate is normal";
    the combined statistic ``-2 Σ ln p`` is mapped back through the chi²
    survival function so the output is again a [0, 1] outlierness.
    """
    scores = _validate(level_scores)
    eps = 1e-12
    stat = 0.0
    for score in scores.values():
        p = min(max(1.0 - score, eps), 1.0)
        stat += -2.0 * math.log(p)
    combined_p = float(chi2.sf(stat, df=2 * len(scores)))
    return 1.0 - combined_p


FUSION_STRATEGIES: Dict[str, Callable[[Mapping[ProductionLevel, float]], float]] = {
    "max": fuse_max,
    "mean": fuse_mean,
    "weighted": fuse_weighted,
    "fisher": fuse_fisher,
}


def fuse(level_scores: Mapping[ProductionLevel, float], strategy: str = "weighted") -> float:
    """Fuse per-level scores with the named strategy."""
    try:
        fn = FUSION_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown fusion strategy {strategy!r}; choose from {sorted(FUSION_STRATEGIES)}"
        ) from None
    return fn(level_scores)
