"""Crash-consistent checkpoint / warm-restart subsystem (DESIGN §11).

An industrial monitor gets OOM-killed and rebooted mid-shift; restarting
must not cost a full re-scan of plant history.  This module snapshots
everything a :class:`~repro.core.pipeline.PlantHierarchyContext` cannot
cheaply re-derive — the per-task persisted outputs and replayable event
lists, the confirmation/support/candidate memo caches, the incremental
counters, and the plant ingest *watermark* — so a restarted worker
rebuilds in milliseconds and replays only the jobs past the watermark
through ``ingest_job``.

Snapshot files (``repro.snapshot/1``, the sibling of ``repro.manifest/1``
in :mod:`repro.obs.export`) are written crash-consistently via
:func:`repro.atomic.write_atomic` (temp file + fsync + atomic rename):

* an 8-byte magic, a big-endian 8-byte header length, then a JSON
  header carrying the schema tag, format version, JSON-safe metadata,
  and a section index (name, offset, length, CRC32 per section);
* concatenated pickled section payloads, each integrity-checked on load;
* bounded retention (newest ``retain`` files survive a save);
* a version + migration hook (:func:`register_migration`) so old
  snapshots upgrade instead of crashing the resume path;
* corrupt snapshots (bad magic, CRC mismatch, truncated payload, foreign
  schema) emit a structured WARNING and a
  ``repro_checkpoint_corrupt_total`` increment, and
  :meth:`SnapshotStore.load_latest` falls back to the newest *valid*
  snapshot — a torn file never crashes a resume.

What is **not** checkpointed: the metrics registry and tracer spans
(observability state is per-process and explicitly outside the
byte-identity contract), the correspondence graph and navigation indexes
(pure functions of the dataset, rebuilt on restore), and the raw plant
signals (the caller re-supplies the dataset; snapshots store only the
watermark that partitions it).
"""

from __future__ import annotations

import json
import pathlib
import pickle
import re
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union, cast

from ..atomic import write_atomic
from ..obs import Telemetry

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "Snapshot",
    "SnapshotStore",
    "CheckpointManager",
    "resume_pipeline",
    "register_migration",
    "pack_detector",
    "unpack_detector",
]

#: Schema tag of the on-disk snapshot format (sibling of
#: ``repro.manifest/1``); bump :data:`SNAPSHOT_VERSION` and register a
#: migration when the section layout changes.
SNAPSHOT_SCHEMA = "repro.snapshot/1"
SNAPSHOT_VERSION = 1

_MAGIC = b"REPROSNP"
_FILE_PATTERN = re.compile(r"^snapshot-(\d{8})\.snap$")

PathLike = Union[str, pathlib.Path]

#: Registered format migrations: ``from_version -> sections upgrader``.
#: A loader below the current version applies migrations in sequence; a
#: missing step is a :class:`SnapshotError`, never silent misreading.
_MIGRATIONS: Dict[int, Callable[[Dict[str, object]], Dict[str, object]]] = {}


def register_migration(
    from_version: int,
) -> Callable[
    [Callable[[Dict[str, object]], Dict[str, object]]],
    Callable[[Dict[str, object]], Dict[str, object]],
]:
    """Decorator registering an upgrader ``from_version -> from_version+1``."""

    def decorate(
        fn: Callable[[Dict[str, object]], Dict[str, object]]
    ) -> Callable[[Dict[str, object]], Dict[str, object]]:
        _MIGRATIONS[from_version] = fn
        return fn

    return decorate


class SnapshotError(RuntimeError):
    """A snapshot could not be written, parsed, or validated."""


@dataclass(frozen=True)
class Snapshot:
    """One loaded snapshot: its path, format version, and sections."""

    path: pathlib.Path
    version: int
    meta: Dict[str, object]
    sections: Dict[str, object]


class SnapshotStore:
    """Versioned on-disk snapshot store with bounded retention.

    One directory holds a monotonically numbered sequence of
    ``snapshot-<seq>.snap`` files; :meth:`save` writes a new one
    crash-consistently and prunes everything older than the newest
    ``retain``, :meth:`load_latest` walks the sequence newest-first past
    any corrupt file.
    """

    def __init__(
        self,
        directory: PathLike,
        retain: int = 3,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.directory = pathlib.Path(directory)
        self.retain = retain
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(logger_name="checkpoint")
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        m = self.telemetry.metrics
        self._m_snapshots = m.counter(
            "repro_checkpoint_snapshots_total",
            "Snapshots written, by trigger (build / refresh / manual).",
            labelnames=("trigger",),
        )
        self._m_bytes = m.gauge(
            "repro_checkpoint_bytes",
            "Size of the most recently written snapshot file.",
        )
        self._m_duration = m.histogram(
            "repro_checkpoint_duration_seconds",
            "Wall-clock duration of one snapshot write.",
        )
        self._m_corrupt = m.counter(
            "repro_checkpoint_corrupt_total",
            "Snapshots rejected at load time (CRC / schema / truncation).",
        )

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def save(
        self,
        sections: Dict[str, object],
        meta: Optional[Dict[str, object]] = None,
        trigger: str = "manual",
    ) -> pathlib.Path:
        """Serialize ``sections`` into the next snapshot file.

        ``meta`` must be JSON-safe (it lands in the plain-text header so
        a snapshot can be identified without unpickling anything);
        ``sections`` values are pickled.  Returns the written path.
        """
        started = self.telemetry.clock()
        index: List[Dict[str, object]] = []
        payloads: List[bytes] = []
        offset = 0
        for name in sections:
            blob = pickle.dumps(sections[name], protocol=4)
            index.append(
                {
                    "name": name,
                    "offset": offset,
                    "length": len(blob),
                    "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
                }
            )
            payloads.append(blob)
            offset += len(blob)
        header = json.dumps(
            {
                "schema": SNAPSHOT_SCHEMA,
                "version": SNAPSHOT_VERSION,
                "meta": dict(meta or {}),
                "sections": index,
            },
            sort_keys=True,
        ).encode("utf-8")
        blob = b"".join(
            [_MAGIC, struct.pack(">Q", len(header)), header, *payloads]
        )
        seq = self._next_seq()
        path = self.directory / f"snapshot-{seq:08d}.snap"
        write_atomic(path, blob)
        self._prune()
        self._m_snapshots.inc(trigger=trigger)
        self._m_bytes.set(float(len(blob)))
        self._m_duration.observe(max(0.0, self.telemetry.clock() - started))
        return path

    def _next_seq(self) -> int:
        existing = [seq for seq, __ in self._listed()]
        return (max(existing) + 1) if existing else 1

    def _listed(self) -> List[Tuple[int, pathlib.Path]]:
        """``(seq, path)`` pairs of every snapshot file, oldest first."""
        out: List[Tuple[int, pathlib.Path]] = []
        for path in self.directory.iterdir():
            match = _FILE_PATTERN.match(path.name)
            if match:
                out.append((int(match.group(1)), path))
        out.sort()
        return out

    def snapshots(self) -> List[pathlib.Path]:
        """Snapshot paths on disk, oldest first."""
        return [path for __, path in self._listed()]

    def _prune(self) -> None:
        listed = self._listed()
        for __, path in listed[: max(0, len(listed) - self.retain)]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleaner
                pass

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def load(self, path: PathLike) -> Snapshot:
        """Parse and validate one snapshot file (raises :class:`SnapshotError`)."""
        path = pathlib.Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        if len(raw) < len(_MAGIC) + 8 or not raw.startswith(_MAGIC):
            raise SnapshotError(f"{path.name}: bad magic (not a repro snapshot)")
        (header_len,) = struct.unpack(
            ">Q", raw[len(_MAGIC) : len(_MAGIC) + 8]
        )
        body_start = len(_MAGIC) + 8 + header_len
        if body_start > len(raw):
            raise SnapshotError(f"{path.name}: truncated header")
        try:
            header = json.loads(raw[len(_MAGIC) + 8 : body_start].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{path.name}: unparseable header: {exc}") from exc
        if header.get("schema") != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"{path.name}: foreign schema {header.get('schema')!r} "
                f"(expected {SNAPSHOT_SCHEMA!r})"
            )
        version = int(header.get("version", 0))
        if version > SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path.name}: snapshot version {version} is newer than this "
                f"build understands ({SNAPSHOT_VERSION})"
            )
        sections: Dict[str, object] = {}
        for entry in header.get("sections", []):
            start = body_start + int(entry["offset"])
            end = start + int(entry["length"])
            if end > len(raw):
                raise SnapshotError(
                    f"{path.name}: truncated section {entry['name']!r}"
                )
            blob = raw[start:end]
            if (zlib.crc32(blob) & 0xFFFFFFFF) != int(entry["crc32"]):
                raise SnapshotError(
                    f"{path.name}: CRC mismatch in section {entry['name']!r}"
                )
            try:
                sections[str(entry["name"])] = pickle.loads(blob)
            except (
                pickle.UnpicklingError,
                AttributeError,
                ImportError,
                IndexError,
                EOFError,
                TypeError,
                ValueError,
            ) as exc:
                raise SnapshotError(
                    f"{path.name}: unpicklable section {entry['name']!r}: {exc}"
                ) from exc
        while version < SNAPSHOT_VERSION:
            migrate = _MIGRATIONS.get(version)
            if migrate is None:
                raise SnapshotError(
                    f"{path.name}: no migration registered from version {version}"
                )
            sections = migrate(sections)
            version += 1
        return Snapshot(
            path=path,
            version=version,
            meta=dict(header.get("meta", {})),
            sections=sections,
        )

    def load_latest(self) -> Optional[Snapshot]:
        """Newest valid snapshot, or ``None`` when no snapshot survives.

        Corrupt files (torn writes, CRC mismatches, foreign schemas)
        never raise: each one logs a structured WARNING, bumps
        ``repro_checkpoint_corrupt_total``, and the walk falls back to
        the next-newest file.
        """
        for __, path in reversed(self._listed()):
            try:
                return self.load(path)
            except SnapshotError as exc:
                self._m_corrupt.inc()
                self.telemetry.warning(
                    f"corrupt snapshot skipped: {exc}",
                    snapshot=path.name,
                    error=str(exc),
                )
        return None

    def latest_age_seconds(self) -> Optional[float]:
        """Age of the newest snapshot file (wall clock vs. mtime)."""
        listed = self._listed()
        if not listed:
            return None
        __, path = listed[-1]
        try:
            return max(0.0, time.time() - path.stat().st_mtime)
        except OSError:  # pragma: no cover - racing cleaner
            return None


# ----------------------------------------------------------------------
# fitted-detector state (the BaseDetector.state_dict contract)
# ----------------------------------------------------------------------
def pack_detector(detector: object) -> Dict[str, object]:
    """Serialize one fitted registry detector for a snapshot section."""
    state = cast(Callable[[], Dict[str, object]], getattr(detector, "state_dict"))
    return state()


def unpack_detector(state: Dict[str, object]) -> object:
    """Rebuild a fitted detector from :func:`pack_detector` output.

    The detector class is resolved through the registry by the ``name``
    recorded in the state dict, then :meth:`~repro.detectors.BaseDetector.
    load_state_dict` restores the fit.
    """
    from ..detectors import make_detector

    name = state.get("name")
    if not isinstance(name, str):
        raise SnapshotError(f"detector state without a name: {state.get('name')!r}")
    detector = make_detector(name)
    detector.load_state_dict(state)
    return detector


# ----------------------------------------------------------------------
# pipeline wiring
# ----------------------------------------------------------------------
@dataclass
class CheckpointManager:
    """Periodic snapshotting policy bound to one pipeline.

    Built by :class:`~repro.core.pipeline.HierarchicalDetectionPipeline`
    when ``PipelineConfig.checkpoint_dir`` is set: one snapshot after the
    cold build, then one after every ``every``-th ``refresh()``.
    ``post_snapshot_hooks`` run after each completed snapshot write — the
    chaos harness uses them to SIGKILL the process at seeded snapshot
    boundaries (see :func:`repro.plant.chaos.kill_after_snapshots`).
    """

    pipeline: object
    store: SnapshotStore
    every: int = 1
    extra_meta: Dict[str, object] = field(default_factory=dict)
    stream_monitor: Optional[object] = None
    post_snapshot_hooks: List[Callable[[pathlib.Path], None]] = field(
        default_factory=list
    )
    _refreshes_since: int = field(default=0, init=False)

    def add_post_snapshot_hook(
        self, hook: Callable[[pathlib.Path], None]
    ) -> None:
        self.post_snapshot_hooks.append(hook)

    def snapshot(self, trigger: str = "manual") -> pathlib.Path:
        """Write one snapshot of the pipeline's current state now."""
        from .pipeline import HierarchicalDetectionPipeline

        pipeline = cast(HierarchicalDetectionPipeline, self.pipeline)
        context = pipeline.context
        watermark = sorted(
            (m.machine_id, j.job_index)
            for m in pipeline.dataset.iter_machines()
            for j in m.jobs
        )
        sections: Dict[str, object] = {
            "meta": {
                "config": pipeline.config,
                "watermark": watermark,
                "extra": dict(self.extra_meta),
            },
            "tasks": context._snapshot_task_state(),
            "caches": context._snapshot_cache_state(),
            "incremental": context._snapshot_incremental_state(),
            "health": context.health.as_dict(),
        }
        if self.stream_monitor is not None:
            stream_state = cast(
                Callable[[], Dict[str, object]],
                getattr(self.stream_monitor, "state_dict"),
            )
            sections["stream"] = stream_state()
        path = self.store.save(
            sections,
            meta={
                "trigger": trigger,
                "n_jobs": len(watermark),
                "executor": pipeline.config.executor,
            },
            trigger=trigger,
        )
        for hook in list(self.post_snapshot_hooks):
            hook(path)
        return path

    def after_refresh(self) -> Optional[pathlib.Path]:
        """Count one refresh; snapshot when the period elapses."""
        self._refreshes_since += 1
        if self._refreshes_since < self.every:
            return None
        self._refreshes_since = 0
        return self.snapshot(trigger="refresh")


def resume_pipeline(
    dataset: object,
    checkpoint_dir: PathLike,
    selector: Optional[object] = None,
    telemetry: Optional[Telemetry] = None,
    stream_monitor: Optional[object] = None,
    replay: bool = True,
) -> Tuple[object, List[Dict[str, object]], Snapshot]:
    """Warm-restart a pipeline from the newest valid snapshot.

    ``dataset`` is the *full* plant (the caller reloads or re-simulates
    it); the snapshot's watermark partitions it into the already-scored
    base and the tail of jobs the kill interrupted.  The context is
    rebuilt from the snapshot's task outputs — no detector re-runs — and
    with ``replay=True`` the tail is re-ingested job by job through
    ``ingest_job`` in global start order.  Returns ``(pipeline,
    replay_summaries, snapshot)``.

    The restored run continues under the snapshot's own
    :class:`~repro.core.pipeline.PipelineConfig` (including its
    ``checkpoint_dir``, so periodic snapshotting resumes seamlessly);
    reports, health, and stats after the replay are byte-identical to an
    uninterrupted run of the same workload.
    """
    from ..plant import PlantDataset
    from .pipeline import HierarchicalDetectionPipeline

    telemetry_bundle = telemetry
    store = SnapshotStore(checkpoint_dir, telemetry=telemetry_bundle)
    snapshot = store.load_latest()
    if snapshot is None:
        raise SnapshotError(
            f"no usable snapshot under {pathlib.Path(checkpoint_dir)}"
        )
    meta = cast(Dict[str, object], snapshot.sections["meta"])
    config = meta["config"]
    watermark = cast(List[Tuple[str, int]], meta["watermark"])
    plant = cast(PlantDataset, dataset)
    base, arrivals = plant.split_at_watermark(
        [(machine_id, job_index) for machine_id, job_index in watermark]
    )
    pipeline = HierarchicalDetectionPipeline._resumed(
        base,
        snapshot.sections,
        selector=selector,
        config=config,
        telemetry=telemetry_bundle,
    )
    manager = pipeline.checkpoint
    if manager is not None:
        manager.extra_meta = dict(
            cast(Dict[str, object], meta.get("extra", {}))
        )
    if stream_monitor is not None and "stream" in snapshot.sections:
        load_stream = cast(
            Callable[[Dict[str, object]], object],
            getattr(stream_monitor, "load_state_dict"),
        )
        load_stream(cast(Dict[str, object], snapshot.sections["stream"]))
        if manager is not None:
            manager.stream_monitor = stream_monitor
    registry = pipeline.telemetry.metrics
    registry.gauge(
        "repro_checkpoint_resume_tail_jobs",
        "Jobs past the watermark replayed by the last resume.",
    ).set(float(len(arrivals)))
    age = store.latest_age_seconds()
    if age is not None:
        registry.gauge(
            "repro_checkpoint_age_seconds",
            "Age of the snapshot the last resume restored from.",
        ).set(age)
    summaries: List[Dict[str, object]] = []
    if replay:
        for machine_id, job in arrivals:
            summaries.append(pipeline.ingest_job(machine_id, job))
    return pipeline, summaries, snapshot
