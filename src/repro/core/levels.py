"""The five production levels of Fig. 2.

Level 1 (phase) is the most detailed view — multi-dimensional,
high-resolution sensor series and discrete event sequences.  Level 2 (job)
aggregates a whole production process: setup parameters plus the CAQ check,
high-dimensional but not a time series.  Level 3 (environment) is a
time series measured over the same period without belonging to the process.
Level 4 (production line) turns jobs-over-time into a series of
high-dimensional points.  Level 5 (production) spans machines — the most
complex, most aggregated scenario.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..detectors import DataShape

__all__ = ["ProductionLevel", "LevelContract", "LEVEL_CONTRACTS"]


class ProductionLevel(enum.IntEnum):
    """Fig. 2, circled 1-5.  Integer values ARE the paper's level numbers."""

    PHASE = 1
    JOB = 2
    ENVIRONMENT = 3
    PRODUCTION_LINE = 4
    PRODUCTION = 5

    @property
    def label(self) -> str:
        return _LABELS[self]

    def up(self) -> "ProductionLevel | None":
        """The next level toward production, or None at the top."""
        return ProductionLevel(self + 1) if self < ProductionLevel.PRODUCTION else None

    def down(self) -> "ProductionLevel | None":
        """The next level toward phases, or None at the bottom."""
        return ProductionLevel(self - 1) if self > ProductionLevel.PHASE else None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"L{int(self)}:{self.label}"


_LABELS = {
    ProductionLevel.PHASE: "phase",
    ProductionLevel.JOB: "job",
    ProductionLevel.ENVIRONMENT: "environment",
    ProductionLevel.PRODUCTION_LINE: "production-line",
    ProductionLevel.PRODUCTION: "production",
}


@dataclass(frozen=True)
class LevelContract:
    """What kind of data a level exposes and at which granularity outliers
    should be reported there (Sections 2-3)."""

    level: ProductionLevel
    description: str
    data_kind: str  # "series" | "vectors" | "vector-series"
    outlier_granularity: DataShape
    resolution: str  # qualitative, for reports


LEVEL_CONTRACTS: Tuple[LevelContract, ...] = (
    LevelContract(
        ProductionLevel.PHASE,
        "multi-dimensional high-resolution sensor series and discrete "
        "event sequences per production phase",
        data_kind="series",
        outlier_granularity=DataShape.POINTS,
        resolution="high (per sample)",
    ),
    LevelContract(
        ProductionLevel.JOB,
        "per-job high-dimensional setup parameters and CAQ quality vector",
        data_kind="vectors",
        outlier_granularity=DataShape.POINTS,
        resolution="one row per job",
    ),
    LevelContract(
        ProductionLevel.ENVIRONMENT,
        "room-environment series measured over the same period, not part "
        "of the production process",
        data_kind="series",
        outlier_granularity=DataShape.SUBSEQUENCES,
        resolution="medium (coarser sampling)",
    ),
    LevelContract(
        ProductionLevel.PRODUCTION_LINE,
        "jobs over time: the high-dimensional setup+quality rows of a line "
        "form a time-ordered sequence",
        data_kind="vector-series",
        outlier_granularity=DataShape.POINTS,
        resolution="one row per job, line-wide",
    ),
    LevelContract(
        ProductionLevel.PRODUCTION,
        "cross-machine KPI panel over the whole production",
        data_kind="vectors",
        outlier_granularity=DataShape.POINTS,
        resolution="one row per machine",
    ),
)


def contract_for(level: ProductionLevel) -> LevelContract:
    """The data contract of one level."""
    return LEVEL_CONTRACTS[int(level) - 1]
