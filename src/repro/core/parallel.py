"""Parallel level-DAG execution engine for the hierarchical pipeline.

Section 5 of the paper singles out *calculation speed* as a core
challenge of hierarchical outlier detection.  The scoring work of one
plant run decomposes naturally into a small DAG — phase scoring per
machine, environment scoring per line, the global job table, the per-line
jobs-over-time matrices, and the production panel — and the tasks inside
one level are embarrassingly parallel.  This module provides the generic
machinery; :mod:`repro.core.pipeline` builds the concrete graph.

Design constraints, in order:

* **determinism first** — results are merged *by task key in graph
  insertion order*, never in completion order; per-task RNG seeds are a
  pure function of the task key (:func:`derive_task_seed`); the serial
  executor and both parallel executors therefore produce bit-identical
  pipeline results;
* **one construction site** — this module is the only place in
  ``src/repro`` allowed to construct ``ThreadPoolExecutor`` /
  ``ProcessPoolExecutor`` (enforced statically by repro-lint rule
  DET005), so executor policy, worker sizing, and shutdown discipline
  live in exactly one file;
* **measurable** — :class:`EngineStats` records per-task wall latency,
  the maximum number of simultaneously ready tasks (queue depth), and
  the compute/wall speedup estimate the pipeline folds into metrics.

The worker callable passed to :meth:`ParallelEngine.run` must be a
module-level function (or a :func:`functools.partial` of one) when the
``process`` executor is used — it crosses the pickle boundary.
"""

from __future__ import annotations

import os
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Task",
    "TaskGraph",
    "EngineStats",
    "ParallelEngine",
    "EXECUTORS",
    "derive_task_seed",
    "resolve_workers",
]

#: The configurable executor kinds (``PipelineConfig.executor``).
EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")


def derive_task_seed(root_seed: int, key: str) -> int:
    """Deterministic per-task RNG child seed.

    A pure function of ``(root_seed, key)`` — independent of scheduling
    order, worker identity, and executor kind — so stochastic detectors
    seeded from it behave identically under every executor.  The key is
    folded through CRC-32 into a :class:`numpy.random.SeedSequence` so
    sibling tasks get statistically independent streams.
    """
    entropy = [int(root_seed) & 0xFFFFFFFF, zlib.crc32(key.encode("utf-8"))]
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])


def resolve_workers(executor: str, max_workers: Optional[int]) -> int:
    """Worker count for an executor: explicit cap, else auto from the host.

    Auto-sizing prefers the scheduling affinity mask (container CPU
    quotas) over the raw core count; the serial executor always reports
    a single worker.
    """
    if executor == "serial":
        return 1
    if max_workers is not None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        return int(max_workers)
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux: no affinity API
        available = os.cpu_count() or 1
    return max(1, available)


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``deps`` name tasks that must complete before this one may start;
    they must already be in the graph when the task is added, which
    keeps every :class:`TaskGraph` topologically ordered by construction.
    """

    key: str
    payload: object
    deps: Tuple[str, ...] = ()


class TaskGraph:
    """An insertion-ordered DAG of :class:`Task` objects.

    Insertion order is the canonical merge order: the engine returns
    results keyed and ordered by it, so replaying side effects over the
    result dict reproduces the serial pipeline's event sequence exactly.
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}

    def add(self, task: Task) -> None:
        if task.key in self._tasks:
            raise ValueError(f"duplicate task key {task.key!r}")
        for dep in task.deps:
            if dep not in self._tasks:
                raise ValueError(
                    f"task {task.key!r} depends on unknown task {dep!r} "
                    "(dependencies must be added first)"
                )
        self._tasks[task.key] = task

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):  # type: ignore[no-untyped-def]  # Iterator[Task]
        return iter(self._tasks.values())

    def __contains__(self, key: str) -> bool:
        return key in self._tasks

    @property
    def keys(self) -> List[str]:
        return list(self._tasks)

    @property
    def n_edges(self) -> int:
        return sum(len(t.deps) for t in self._tasks.values())

    def ancestors(self, key: str) -> List[str]:
        """Every task ``key`` transitively depends on, in insertion order.

        The dirty-closure primitive of incremental recomputation: when a
        node's inputs change, its ancestors bound what must already exist
        and its :meth:`descendants` bound what must be re-run.
        """
        if key not in self._tasks:
            raise KeyError(f"no task {key!r}")
        seen: Dict[str, None] = {}
        stack = list(self._tasks[key].deps)
        while stack:
            dep = stack.pop()
            if dep not in seen:
                seen[dep] = None
                stack.extend(self._tasks[dep].deps)
        return [k for k in self._tasks if k in seen]

    def descendants(self, key: str) -> List[str]:
        """Every task that transitively depends on ``key``, in insertion order."""
        if key not in self._tasks:
            raise KeyError(f"no task {key!r}")
        reached: Dict[str, None] = {key: None}
        # One forward sweep suffices: insertion order is topological, so a
        # task's deps are always visited before the task itself.
        for task in self._tasks.values():
            if task.key in reached:
                continue
            if any(dep in reached for dep in task.deps):
                reached[task.key] = None
        return [k for k in reached if k != key]


@dataclass
class EngineStats:
    """What one engine run cost, and how parallel it actually was.

    Besides wall latency the engine attributes per-task CPU seconds
    (``time.thread_time`` where available, else ``time.process_time``)
    and — when allocation capture is on — the peak ``tracemalloc``
    allocation inside each task.  All of it is measured *inside* the
    worker, so IPC and queue wait never pollute the attribution.

    Instances travel inside checkpoint snapshots; accessors tolerate
    unpickled instances from snapshots taken before the CPU/allocation
    fields existed.
    """

    executor: str
    workers: int
    n_tasks: int = 0
    wall_seconds: float = 0.0
    task_seconds: Dict[str, float] = field(default_factory=dict)
    max_queue_depth: int = 0
    task_cpu_seconds: Dict[str, float] = field(default_factory=dict)
    task_peak_alloc: Dict[str, int] = field(default_factory=dict)
    #: Measured task time of a same-run serial baseline, when one exists
    #: (the speedup benchmark runs serial first and stamps it onto the
    #: parallel legs).  Unset, the engine's own summed in-worker task
    #: seconds serve as the measured serial-equivalent.
    serial_baseline_seconds: Optional[float] = None
    #: Transport accounting (process executor): payload bytes that crossed
    #: the pickle boundary vs. bytes served via the shared-memory arena,
    #: plus the encode (publish) and per-task decode (attach+read) costs.
    bytes_pickled: int = 0
    bytes_shared: int = 0
    transport_encode_seconds: float = 0.0
    task_transport_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def compute_seconds(self) -> float:
        """Summed in-worker task latencies (the serial-equivalent cost)."""
        return float(sum(self.task_seconds.values()))

    @property
    def speedup(self) -> float:
        """Measured serial baseline over wall: > 1 under effective parallelism.

        One definition everywhere: the baseline is a *measured* serial
        task time from the same run — ``serial_baseline_seconds`` when a
        caller recorded one (BENCH_parallel stamps the serial leg's task
        time onto the parallel legs), else this run's own summed
        in-worker task seconds.  Never a wall-clock heuristic.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        baseline = getattr(self, "serial_baseline_seconds", None)
        if baseline is None:
            baseline = self.compute_seconds
        return float(baseline) / self.wall_seconds

    @property
    def transport_decode_seconds(self) -> float:
        """Summed per-task shared-memory decode cost (0.0 off the shm path)."""
        return float(sum(getattr(self, "task_transport_seconds", {}).values()))

    @property
    def cpu_seconds(self) -> float:
        """Summed in-worker CPU seconds across all tasks."""
        return float(sum(getattr(self, "task_cpu_seconds", {}).values()))

    @property
    def cpu_utilization(self) -> float:
        """CPU seconds per wall second (an executor-efficiency signal)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds

    def top_tasks(self, k: int = 10) -> List[Dict[str, object]]:
        """Top-``k`` tasks by wall latency, with CPU/alloc attribution.

        The rows behind ``repro perf report``: task key, level kind,
        wall seconds, plus ``cpu_seconds`` / ``peak_alloc_bytes`` where
        captured.
        """
        cpu = getattr(self, "task_cpu_seconds", {})
        alloc = getattr(self, "task_peak_alloc", {})
        ordered = sorted(self.task_seconds.items(), key=lambda kv: (-kv[1], kv[0]))
        rows: List[Dict[str, object]] = []
        for key, wall in ordered[: max(0, int(k))]:
            row: Dict[str, object] = {
                "task": key,
                "kind": key.split("/", 1)[0],
                "wall_seconds": wall,
            }
            if key in cpu:
                row["cpu_seconds"] = cpu[key]
            if key in alloc:
                row["peak_alloc_bytes"] = int(alloc[key])
            rows.append(row)
        return rows

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary for run manifests."""
        baseline = getattr(self, "serial_baseline_seconds", None)
        return {
            "executor": self.executor,
            "workers": self.workers,
            "tasks": self.n_tasks,
            "wall_seconds": self.wall_seconds,
            "compute_seconds": self.compute_seconds,
            "speedup": self.speedup,
            "serial_baseline_seconds": None if baseline is None else float(baseline),
            "max_queue_depth": self.max_queue_depth,
            "cpu_seconds": self.cpu_seconds,
            "cpu_utilization": self.cpu_utilization,
            "alloc_tracked": bool(getattr(self, "task_peak_alloc", {})),
            "transport": {
                "mode": "shm" if getattr(self, "bytes_shared", 0) else "pickle",
                "bytes_pickled": int(getattr(self, "bytes_pickled", 0)),
                "bytes_shared": int(getattr(self, "bytes_shared", 0)),
                "encode_seconds": float(getattr(self, "transport_encode_seconds", 0.0)),
                "decode_seconds": self.transport_decode_seconds,
            },
            "top_tasks": self.top_tasks(),
        }


#: In-worker CPU clock: per-thread where the platform has one, so thread
#: pools attribute CPU to the right task; process workers are effectively
#: single-threaded so the process-wide fallback is equivalent there.
_cpu_clock: Callable[[], float] = getattr(time, "thread_time", time.process_time)


def _timed_call(
    worker: Callable[[object], object], payload: object, capture_alloc: bool = False
) -> Tuple[object, float, float, int]:
    """Run one task in the worker, timing it locally.

    Module-level so it pickles for the process executor; timing inside
    the worker keeps IPC/queue wait out of the compute-seconds estimate.
    Returns ``(result, wall_seconds, cpu_seconds, peak_alloc_bytes)``;
    peak allocation is ``-1`` unless ``capture_alloc`` asked tracemalloc
    to watch the call (opt-in — tracing every allocation is far too slow
    to leave on by default).
    """
    peak = -1
    tracing_already = False
    if capture_alloc:
        import tracemalloc

        tracing_already = tracemalloc.is_tracing()
        if not tracing_already:
            tracemalloc.start()
        tracemalloc.reset_peak()
    started_cpu = _cpu_clock()
    started = time.perf_counter()
    result = worker(payload)
    elapsed = time.perf_counter() - started
    cpu = _cpu_clock() - started_cpu
    if capture_alloc:
        import tracemalloc

        peak = tracemalloc.get_traced_memory()[1]
        if not tracing_already:
            tracemalloc.stop()
    return result, elapsed, cpu, peak


class ParallelEngine:
    """Schedules a :class:`TaskGraph` onto a configurable executor.

    ``executor`` is one of :data:`EXECUTORS`; ``max_workers`` caps the
    pool (default: auto-sized, see :func:`resolve_workers`).  ``clock``
    measures engine wall time and is injectable for tests.
    ``capture_alloc`` additionally records each task's peak tracemalloc
    allocation (opt-in: tracing allocations is expensive).

    :meth:`run` returns ``(results, stats)`` where ``results`` maps task
    key to worker return value **in graph insertion order** regardless of
    completion order — the determinism contract callers merge against.
    """

    def __init__(
        self,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
        capture_alloc: bool = False,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.executor = executor
        self.workers = resolve_workers(executor, max_workers)
        self._clock = clock
        self.capture_alloc = bool(capture_alloc)

    def run(
        self, graph: TaskGraph, worker: Callable[[object], object]
    ) -> Tuple[Dict[str, object], EngineStats]:
        if os.environ.get("REPRO_SANITIZE"):
            # tag each task's key into the sanitizer's context so shared-write
            # findings attribute to the task that made them; the wrapper is
            # a module-level partial and stays picklable for process pools
            from .. import sanitize

            worker = sanitize.wrap_worker(worker)
        stats = EngineStats(
            executor=self.executor, workers=self.workers, n_tasks=len(graph)
        )
        started = self._clock()
        if self.executor == "serial":
            results = self._run_serial(graph, worker, stats)
        else:
            results = self._run_pooled(graph, worker, stats)
        stats.wall_seconds = self._clock() - started
        # canonical order: graph insertion order, never completion order
        return {key: results[key] for key in graph.keys}, stats

    # -- serial ---------------------------------------------------------
    def _run_serial(
        self,
        graph: TaskGraph,
        worker: Callable[[object], object],
        stats: EngineStats,
    ) -> Dict[str, object]:
        results: Dict[str, object] = {}
        pending = {t.key: set(t.deps) for t in graph}
        for task in graph:
            # the graph is topologically ordered by construction, so a
            # blocked task here is an internal invariant violation
            ready = [k for k, deps in pending.items() if not deps]
            stats.max_queue_depth = max(stats.max_queue_depth, len(ready))
            if pending.pop(task.key):
                raise RuntimeError(
                    f"task {task.key!r} ran before its dependencies"
                )
            value, elapsed, cpu, peak = _timed_call(
                worker, task.payload, self.capture_alloc
            )
            results[task.key] = value
            stats.task_seconds[task.key] = elapsed
            stats.task_cpu_seconds[task.key] = cpu
            if peak >= 0:
                stats.task_peak_alloc[task.key] = peak
            for deps in pending.values():
                deps.discard(task.key)
        return results

    # -- thread / process ----------------------------------------------
    def _make_pool(self):  # type: ignore[no-untyped-def]  # Executor
        # The ONLY pool construction site in src/repro (repro-lint DET005).
        if self.executor == "thread":
            from concurrent.futures import ThreadPoolExecutor

            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-task"
            )
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # fork keeps per-worker startup cheap (no re-import of numpy and
        # the detector registry); fall back to the platform default where
        # fork is unavailable (Windows / macOS spawn-only builds)
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=self.workers, mp_context=context)

    def _run_pooled(
        self,
        graph: TaskGraph,
        worker: Callable[[object], object],
        stats: EngineStats,
    ) -> Dict[str, object]:
        results: Dict[str, object] = {}
        pending: Dict[str, set] = {t.key: set(t.deps) for t in graph}
        tasks = {t.key: t for t in graph}
        in_flight: Dict[Future, str] = {}  # type: ignore[type-arg]
        pool = self._make_pool()
        try:
            while pending or in_flight:
                ready = [k for k, deps in pending.items() if not deps]
                stats.max_queue_depth = max(
                    stats.max_queue_depth, len(ready) + len(in_flight)
                )
                for key in ready:
                    del pending[key]
                    future = pool.submit(
                        _timed_call, worker, tasks[key].payload, self.capture_alloc
                    )
                    in_flight[future] = key
                if not in_flight:
                    raise RuntimeError(
                        f"deadlocked task graph; blocked: {sorted(pending)}"
                    )
                done, __ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    key = in_flight.pop(future)
                    # propagates worker errors
                    value, elapsed, cpu, peak = future.result()
                    results[key] = value
                    stats.task_seconds[key] = elapsed
                    stats.task_cpu_seconds[key] = cpu
                    if peak >= 0:
                        stats.task_peak_alloc[key] = peak
                    for deps in pending.values():
                        deps.discard(key)
        finally:
            # join workers before returning: a later process-pool fork in
            # the same interpreter must not inherit live pool threads
            pool.shutdown(wait=True, cancel_futures=True)
        return results
