"""Outlierness unification.

Section 5 surveys outlierness scores because raw detector outputs are not
comparable — a GMM negative log-likelihood and a kNN distance live on
different scales.  The unifiers here map any raw score vector to [0, 1]
while preserving order, so scores can be compared across detectors and
fused across levels.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Union

import numpy as np
from scipy.stats import norm

#: Anything a unifier accepts: a 1-D array or any sequence of floats.
ScoreVector = Union[np.ndarray, Sequence[float]]

__all__ = ["unify_rank", "unify_gaussian", "unify_minmax", "unify"]


def _validate(scores: ScoreVector) -> np.ndarray:
    arr = np.asarray(scores, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("scores must be 1-D")
    return arr


def unify_rank(scores: ScoreVector) -> np.ndarray:
    """Rank-based unification: score -> (rank - 0.5) / n, ties averaged.

    Distribution-free; the output is uniform on (0, 1) whatever the raw
    scale, which makes it the safest default for cross-detector fusion.
    """
    s = _validate(scores)
    n = len(s)
    if n == 0:
        return s.copy()
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty(n, dtype=np.float64)
    sorted_s = s[order]
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_s[j + 1] == sorted_s[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 0.5
        i = j + 1
    return ranks / n


def unify_gaussian(scores: ScoreVector) -> np.ndarray:
    """Gaussian-tail unification: robust z-score -> Phi(z).

    Assumes the normal mass of scores is roughly Gaussian; outliers land in
    the upper tail close to 1.  Unlike rank unification this preserves
    *magnitude* information: a 10-sigma score maps visibly higher than a
    3-sigma one even when both are the maximum of their batch.
    """
    s = _validate(scores)
    if len(s) == 0:
        return s.copy()
    center = float(np.median(s))
    mad = float(np.median(np.abs(s - center))) * 1.4826
    if mad <= 1e-12:
        std = float(s.std())
        mad = std if std > 1e-12 else 1.0
    z = (s - center) / mad
    return norm.cdf(z)


def unify_minmax(scores: ScoreVector) -> np.ndarray:
    """Affine rescale to [0, 1]; constant inputs map to 0.5."""
    s = _validate(scores)
    if len(s) == 0:
        return s.copy()
    lo, hi = float(s.min()), float(s.max())
    if hi - lo <= 1e-12:
        return np.full_like(s, 0.5)
    return (s - lo) / (hi - lo)


_UNIFIERS: Dict[str, Callable[[ScoreVector], np.ndarray]] = {
    "rank": unify_rank,
    "gaussian": unify_gaussian,
    "minmax": unify_minmax,
}


def unify(scores: ScoreVector, method: str = "gaussian") -> np.ndarray:
    """Dispatch to a unifier by name (``rank`` / ``gaussian`` / ``minmax``)."""
    try:
        fn = _UNIFIERS[method]
    except KeyError:
        raise ValueError(
            f"unknown unification method {method!r}; choose from {sorted(_UNIFIERS)}"
        ) from None
    return fn(scores)
