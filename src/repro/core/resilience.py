"""Fault-tolerant pipeline execution: sandbox, quality gate, RunHealth.

The paper targets *industrial production settings* — environments where
sensors drop out mid-run, streams stall, and individual detectors hit
degenerate inputs.  This module is the resilience layer that lets the
hierarchical pipeline **always return a report, annotated with how
degraded it is**, instead of crashing:

* :class:`DetectorSandbox` — guarded execution of one detector call with a
  wall-clock budget, bounded retry with deterministic backoff for
  transient failures, and a structured :class:`SandboxOutcome` the caller
  dispatches on (fall back to the next ``ChooseAlgorithm`` candidate);
* the **data-quality gate** — :func:`assess_series` classifies a trace's
  infrastructure problems (NaN runs, flatlined/stuck sensors, truncated
  traces) into :class:`QualityIssue` records, :func:`repair_series` fixes
  the benign ones (short gap interpolation, ±inf clipping) and fatal ones
  quarantine the channel;
* :class:`RunHealth` — the structured degradation record attached to every
  pipeline run: fallbacks taken, quarantined channels, warnings, per-level
  degradation notes;
* :func:`robust_fallback_scores` / :func:`robust_matrix_scores` — the
  terminal robust z/MAD baseline that scores a trace when every configured
  detector has failed, so a level is degraded but never silent.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..detectors.errors import (
    DataQualityError,
    DetectorError,
    DetectorTimeoutError,
    NotFittedError,
    ShapeUnsupportedError,
)

__all__ = [
    "FallbackEvent",
    "QuarantineEvent",
    "RunHealth",
    "SandboxPolicy",
    "SandboxOutcome",
    "DetectorSandbox",
    "QualityPolicy",
    "QualityIssue",
    "assess_series",
    "repair_series",
    "robust_fallback_scores",
    "robust_matrix_scores",
]


# ----------------------------------------------------------------------
# RunHealth — the structured degradation record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FallbackEvent:
    """One detector failure that the pipeline survived by falling back."""

    level: str  # production level label (or component name)
    unit: str  # what was being scored, e.g. "line0/m1/job3/printing/chamber_temp-0"
    failed_detector: str
    error: str  # "<ErrorClass>: <message>"
    fallback: str  # detector that took over, or "robust-baseline"
    attempts: int = 1
    timed_out: bool = False


@dataclass(frozen=True)
class QuarantineEvent:
    """One channel (or one trace of a channel) pulled from scoring/support.

    ``scope`` is either the specific trace coordinate
    (``"<machine>/job<j>/<phase>"``, or the line for environment channels)
    or the literal ``"channel"`` when the sensor produced no usable trace
    at all — the dead-sensor case whose vote is removed from the support
    divisor.
    """

    channel_id: str
    scope: str
    reason: str


@dataclass
class RunHealth:
    """How degraded one pipeline run is, and exactly why.

    Every resilience action — a fallback taken, a channel quarantined, a
    swallowed lookup surfaced as a warning — lands here, so a report
    consumer can tell a pristine run from one that survived on fallbacks.
    All record methods are deterministic (no timestamps, insertion order
    follows the pipeline's fixed iteration order), which keeps repeated
    seeded runs byte-identical.
    """

    fallbacks: List[FallbackEvent] = field(default_factory=list)
    quarantines: List[QuarantineEvent] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    level_notes: Dict[str, str] = field(default_factory=dict)

    # -- recording ------------------------------------------------------
    def record_fallback(self, event: FallbackEvent) -> None:
        self.fallbacks.append(event)

    def record_quarantine(self, channel_id: str, scope: str, reason: str) -> None:
        self.quarantines.append(QuarantineEvent(channel_id, scope, reason))

    def warn(self, message: str) -> None:
        """Record a warning once (repeat calls with the same text are no-ops)."""
        if message not in self.warnings:
            self.warnings.append(message)

    def note_level(self, level: str, note: str) -> None:
        """Mark a whole level as degraded (kept: first note wins)."""
        self.level_notes.setdefault(level, note)

    # -- queries --------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return bool(
            self.fallbacks or self.quarantines or self.warnings or self.level_notes
        )

    @property
    def quarantined_channels(self) -> FrozenSet[str]:
        """Every channel with at least one quarantined trace."""
        return frozenset(q.channel_id for q in self.quarantines)

    @property
    def dead_channels(self) -> FrozenSet[str]:
        """Channels quarantined wholesale (scope ``"channel"``): these are
        excluded from the support divisor so a dead sensor no longer votes
        "no support" against a real fault."""
        return frozenset(
            q.channel_id for q in self.quarantines if q.scope == "channel"
        )

    def counters(self) -> Dict[str, int]:
        """Flat integer counters, merged into ``pipeline.stats()``."""
        return {
            "health_fallbacks": len(self.fallbacks),
            "health_quarantines": len(self.quarantines),
            "health_dead_channels": len(self.dead_channels),
            "health_warnings": len(self.warnings),
            "health_degraded_levels": len(self.level_notes),
        }

    def as_dict(self) -> Dict:
        """JSON-safe nested representation (stable key order)."""
        return {
            "degraded": self.degraded,
            "fallbacks": [
                {
                    "level": f.level,
                    "unit": f.unit,
                    "failed_detector": f.failed_detector,
                    "error": f.error,
                    "fallback": f.fallback,
                    "attempts": f.attempts,
                    "timed_out": f.timed_out,
                }
                for f in self.fallbacks
            ],
            "quarantines": [
                {"channel_id": q.channel_id, "scope": q.scope, "reason": q.reason}
                for q in self.quarantines
            ],
            "warnings": list(self.warnings),
            "level_notes": dict(self.level_notes),
            "counters": self.counters(),
        }

    def describe(self) -> str:
        """Multi-line operator summary (empty string when pristine)."""
        if not self.degraded:
            return ""
        lines = ["run health: DEGRADED"]
        for label, note in sorted(self.level_notes.items()):
            lines.append(f"  level {label}: {note}")
        for q in self.quarantines:
            lines.append(f"  quarantined {q.channel_id} [{q.scope}]: {q.reason}")
        for f in self.fallbacks:
            timeout = " (timeout)" if f.timed_out else ""
            lines.append(
                f"  fallback at {f.level} {f.unit}: {f.failed_detector} -> "
                f"{f.fallback}{timeout} after {f.attempts} attempt(s): {f.error}"
            )
        for w in self.warnings:
            lines.append(f"  warning: {w}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# DetectorSandbox — guarded execution with budget / retry / backoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SandboxPolicy:
    """How one detector call is guarded.

    ``time_budget`` is wall-clock seconds per attempt (None disables).
    With ``hard_timeout`` the call runs in a daemon worker thread that is
    abandoned when the budget expires — the only way to survive a *hanging*
    detector; without it the budget is enforced post hoc (a call that
    finished late still counts as timed out, so fallback behaviour is
    deterministic either way).  ``max_attempts`` bounds retries of
    *transient* failures (plain :class:`DetectorError`); deterministic
    failures — :class:`NotFittedError`, :class:`ShapeUnsupportedError`,
    :class:`DataQualityError`, :class:`DetectorTimeoutError` — are never
    retried.  Retry *k* (1-based) sleeps ``backoff_base * 2**(k-1)``
    seconds: deterministic exponential backoff, no jitter, so seeded runs
    replay identically.
    """

    time_budget: Optional[float] = 60.0
    max_attempts: int = 2
    backoff_base: float = 0.0
    hard_timeout: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError("time_budget must be positive (or None)")


@dataclass
class SandboxOutcome:
    """Result of one guarded call: either ``value`` or ``error``."""

    ok: bool
    value: object = None
    error: Optional[BaseException] = None
    attempts: int = 1
    elapsed: float = 0.0
    timed_out: bool = False

    @property
    def error_text(self) -> str:
        if self.error is None:
            return ""
        return f"{type(self.error).__name__}: {self.error}"


#: DetectorError subclasses whose failure is deterministic — retrying the
#: same call cannot help.
_PERMANENT = (
    NotFittedError,
    ShapeUnsupportedError,
    DataQualityError,
    DetectorTimeoutError,
)


class DetectorSandbox:
    """Run detector calls so that no single failure can kill the run.

    ``sleep`` and ``clock`` are injectable for deterministic tests; the
    defaults are :func:`time.sleep` / :func:`time.monotonic`.
    """

    def __init__(
        self,
        policy: Optional[SandboxPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or SandboxPolicy()
        self._sleep = sleep
        self._clock = clock

    def call(self, fn: Callable[[], object], label: str = "detector") -> SandboxOutcome:
        """Execute ``fn`` under the policy; never raises."""
        policy = self.policy
        attempts = 0
        last_error: Optional[BaseException] = None
        elapsed = 0.0
        timed_out = False
        while attempts < policy.max_attempts:
            attempts += 1
            started = self._clock()
            try:
                value = self._invoke(fn, label)
            except BaseException as exc:  # noqa: BLE001 - sandbox boundary
                elapsed = self._clock() - started
                last_error = exc
                timed_out = isinstance(exc, DetectorTimeoutError)
                transient = isinstance(exc, DetectorError) and not isinstance(
                    exc, _PERMANENT
                )
                if not transient or attempts >= policy.max_attempts:
                    break
                if policy.backoff_base > 0:
                    self._sleep(policy.backoff_base * 2 ** (attempts - 1))
                continue
            elapsed = self._clock() - started
            if (
                policy.time_budget is not None
                and not policy.hard_timeout
                and elapsed > policy.time_budget
            ):
                # soft budget: the result arrived too late to trust the
                # detector with the rest of the level — treat as timeout
                last_error = DetectorTimeoutError(label, policy.time_budget)
                timed_out = True
                break
            return SandboxOutcome(
                ok=True, value=value, attempts=attempts, elapsed=elapsed
            )
        return SandboxOutcome(
            ok=False,
            error=last_error,
            attempts=attempts,
            elapsed=elapsed,
            timed_out=timed_out,
        )

    def _invoke(self, fn: Callable[[], object], label: str) -> object:
        if self.policy.time_budget is None or not self.policy.hard_timeout:
            return fn()
        box: Dict[str, object] = {}

        def worker() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - relayed below
                box["error"] = exc

        thread = threading.Thread(
            target=worker, name=f"sandbox-{label}", daemon=True
        )
        thread.start()
        thread.join(self.policy.time_budget)
        if thread.is_alive():
            # the worker is abandoned (daemon): a hanging detector cannot
            # stall the pipeline, only waste its own thread
            raise DetectorTimeoutError(label, self.policy.time_budget)
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["value"]


# ----------------------------------------------------------------------
# data-quality gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualityPolicy:
    """Thresholds of the trace validation gate.

    Fatal issues quarantine the trace (no scoring, no support vote);
    benign ones are repaired (:func:`repair_series`) and surfaced as
    RunHealth warnings.  The defaults are sized for the plant simulator's
    phase traces (60-400 samples at 1 Hz).
    """

    min_length: int = 8  # shorter traces carry no usable signal
    max_nan_fraction: float = 0.5
    max_nan_run: int = 32  # longest contiguous missing run tolerated
    repair_max_gap: int = 8  # gaps up to this length are interpolated
    flatline_run: int = 40  # identical consecutive samples => stuck sensor
    flatline_tolerance: float = 0.0  # |diff| considered "identical"

    def __post_init__(self) -> None:
        if not 0.0 < self.max_nan_fraction <= 1.0:
            raise ValueError("max_nan_fraction must be in (0, 1]")
        if self.min_length < 1 or self.max_nan_run < 1 or self.flatline_run < 2:
            raise ValueError("length thresholds must be positive")


@dataclass(frozen=True)
class QualityIssue:
    """One problem the gate found in a trace."""

    code: str  # "all-missing" | "nan-fraction" | "nan-run" | "gap" |
    #            "non-finite" | "flatline" | "too-short" | "length-mismatch"
    detail: str
    fatal: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "fatal" if self.fatal else "warn"
        return f"[{kind}] {self.code}: {self.detail}"


def _longest_true_run(mask: np.ndarray) -> int:
    """Length of the longest run of True in a boolean array."""
    if mask.size == 0 or not mask.any():
        return 0
    padded = np.concatenate(([False], mask, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return int((edges[1::2] - edges[::2]).max())


def assess_series(
    values: np.ndarray,
    policy: Optional[QualityPolicy] = None,
    expected_length: Optional[int] = None,
) -> List[QualityIssue]:
    """Validate one trace; returns the (possibly empty) issue list.

    ``expected_length`` enables the truncated-trace check: sibling channels
    of one phase must agree on sample count.
    """
    policy = policy or QualityPolicy()
    x = np.asarray(values, dtype=np.float64)
    issues: List[QualityIssue] = []

    if expected_length is not None and len(x) != expected_length:
        issues.append(
            QualityIssue(
                "length-mismatch",
                f"{len(x)} samples where siblings have {expected_length}",
                fatal=True,
            )
        )
    if len(x) < policy.min_length:
        issues.append(
            QualityIssue(
                "too-short", f"{len(x)} samples < min_length {policy.min_length}",
                fatal=True,
            )
        )
        return issues

    finite = np.isfinite(x)
    n_inf = int(np.isinf(x).sum())
    if n_inf:
        issues.append(
            QualityIssue("non-finite", f"{n_inf} infinite sample(s)", fatal=False)
        )
    missing = ~finite
    n_missing = int(missing.sum())
    if n_missing == len(x):
        issues.append(QualityIssue("all-missing", "every sample missing", fatal=True))
        return issues
    if n_missing:
        fraction = n_missing / len(x)
        run = _longest_true_run(missing)
        if fraction > policy.max_nan_fraction:
            issues.append(
                QualityIssue(
                    "nan-fraction",
                    f"{fraction:.0%} missing > {policy.max_nan_fraction:.0%}",
                    fatal=True,
                )
            )
        elif run > policy.max_nan_run:
            issues.append(
                QualityIssue(
                    "nan-run",
                    f"missing run of {run} samples > {policy.max_nan_run}",
                    fatal=True,
                )
            )
        else:
            issues.append(
                QualityIssue(
                    "gap", f"{n_missing} missing sample(s), longest run {run}",
                    fatal=False,
                )
            )

    # stuck-at detection on the observed samples: a healthy analog channel
    # never repeats the exact same value for flatline_run samples
    observed = x[finite]
    if observed.size >= policy.flatline_run:
        same = np.abs(np.diff(observed)) <= policy.flatline_tolerance
        run = _longest_true_run(same) + 1 if same.any() else 1
        if run >= policy.flatline_run:
            issues.append(
                QualityIssue(
                    "flatline",
                    f"stuck at {observed[-1]:.6g} for {run} samples",
                    fatal=True,
                )
            )
    return issues


def repair_series(
    values: np.ndarray, policy: Optional[QualityPolicy] = None
) -> Tuple[np.ndarray, List[str]]:
    """Repair the benign problems of a gated trace.

    ±inf samples become missing; interior missing gaps of at most
    ``repair_max_gap`` samples are linearly interpolated (edge gaps hold
    the nearest observed value).  Longer gaps stay NaN — the detectors'
    NaN handling takes over.  Returns the repaired array (the input is
    never mutated) and human-readable notes of what was done; an empty
    note list means the array is returned unchanged.
    """
    policy = policy or QualityPolicy()
    x = np.asarray(values, dtype=np.float64)
    notes: List[str] = []
    n_inf = int(np.isinf(x).sum())
    if n_inf:
        x = np.where(np.isinf(x), np.nan, x)
        notes.append(f"replaced {n_inf} infinite sample(s) with missing")
    missing = np.isnan(x)
    if missing.any() and not missing.all():
        padded = np.concatenate(([False], missing, [False]))
        edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
        starts, stops = edges[::2], edges[1::2]
        filled = 0
        out = x.copy()
        idx = np.arange(len(x), dtype=np.float64)
        observed = ~missing
        for lo, hi in zip(starts, stops):
            if hi - lo > policy.repair_max_gap:
                continue
            out[lo:hi] = np.interp(idx[lo:hi], idx[observed], x[observed])
            filled += hi - lo
        if filled:
            x = out
            notes.append(f"interpolated {filled} missing sample(s)")
    return x, notes


# ----------------------------------------------------------------------
# terminal robust baseline
# ----------------------------------------------------------------------
def robust_fallback_scores(values: np.ndarray) -> np.ndarray:
    """|robust z| of every sample (median/MAD): the last-resort trace scorer.

    Used when every configured detector for a level has failed; missing
    samples score 0.  Deterministic and parameter-free, so a degraded
    level still produces comparable, finite outlierness.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return np.zeros(0)
    finite = x[np.isfinite(x)]
    if finite.size == 0:
        return np.zeros(len(x))
    med = float(np.median(finite))
    mad = float(np.median(np.abs(finite - med))) * 1.4826
    if mad <= 1e-12:
        mad = float(finite.std()) or 1.0
    scores = np.abs(x - med) / mad
    return np.where(np.isfinite(scores), scores, 0.0)


def robust_matrix_scores(X: np.ndarray) -> np.ndarray:
    """Per-row max |robust z| over columns: the vector-level last resort."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.size == 0:
        return np.zeros(X.shape[0] if X.ndim >= 1 else 0)
    # impute all-missing columns to 0 so nanmedian never sees an empty
    # slice (it would emit a RuntimeWarning, fatal under `-W error`)
    dead_cols = ~np.isfinite(X).any(axis=0)
    if dead_cols.any():
        X = X.copy()
        X[:, dead_cols] = 0.0
    med = np.nanmedian(X, axis=0)
    mad = np.nanmedian(np.abs(X - med), axis=0) * 1.4826
    mad = np.where(mad <= 1e-12, 1.0, mad)
    z = np.abs(X - med) / mad
    z = np.where(np.isfinite(z), z, 0.0)
    return z.max(axis=1)


def clean_float(x: float, default: float = 0.0) -> float:
    """A finite float or ``default`` — for JSON-safe health exports."""
    return float(x) if math.isfinite(x) else default
