"""Core library: the paper's hierarchical outlier model (Sections 2 and 4).

Public surface:

* :class:`ProductionLevel` — the five Fig.-2 levels;
* :func:`find_hierarchical_outliers` / :func:`calc_global_score` —
  Algorithm 1 over any :class:`HierarchyContext`;
* :class:`HierarchicalDetectionPipeline` — the end-to-end plant pipeline;
* :class:`AlgorithmSelector` — ChooseAlgorithm;
* support, score unification, cross-level fusion, and Fig.-1 outlier-type
  classification;
* :class:`SnapshotStore` / :func:`resume_pipeline` — crash-consistent
  checkpointing and warm restart (DESIGN §11).
"""

from .algorithm import HierarchyContext, calc_global_score, find_hierarchical_outliers
from .checkpoint import (
    SNAPSHOT_SCHEMA,
    SNAPSHOT_VERSION,
    CheckpointManager,
    Snapshot,
    SnapshotError,
    SnapshotStore,
    pack_detector,
    register_migration,
    resume_pipeline,
    unpack_detector,
)
from .explain import explain_report
from .fusion import (
    DEFAULT_LEVEL_WEIGHTS,
    FUSION_STRATEGIES,
    fuse,
    fuse_fisher,
    fuse_max,
    fuse_mean,
    fuse_weighted,
)
from .levels import LEVEL_CONTRACTS, LevelContract, ProductionLevel, contract_for
from .outlier import (
    HierarchicalOutlierReport,
    LevelConfirmation,
    OutlierCandidate,
    rank_reports,
)
from .parallel import (
    EXECUTORS,
    EngineStats,
    ParallelEngine,
    Task,
    TaskGraph,
    derive_task_seed,
    resolve_workers,
)
from .pipeline import (
    HierarchicalDetectionPipeline,
    PipelineConfig,
    PipelineStats,
    PlantHierarchyContext,
)
from .resilience import (
    DetectorSandbox,
    FallbackEvent,
    QualityIssue,
    QualityPolicy,
    QuarantineEvent,
    RunHealth,
    SandboxOutcome,
    SandboxPolicy,
    assess_series,
    repair_series,
    robust_fallback_scores,
    robust_matrix_scores,
)
from .scores import unify, unify_gaussian, unify_minmax, unify_rank
from .selection import DEFAULT_PREFERENCES, AlgorithmSelector
from .support import (
    CorrespondenceGraph,
    SupportCalculator,
    SupportResult,
    window_bounds,
)
from .types import TypeClassification, classify_outlier_type, effect_profile

__all__ = [
    "ProductionLevel",
    "LevelContract",
    "LEVEL_CONTRACTS",
    "contract_for",
    "OutlierCandidate",
    "LevelConfirmation",
    "HierarchicalOutlierReport",
    "rank_reports",
    "HierarchyContext",
    "calc_global_score",
    "find_hierarchical_outliers",
    "explain_report",
    "AlgorithmSelector",
    "DEFAULT_PREFERENCES",
    "CorrespondenceGraph",
    "SupportCalculator",
    "SupportResult",
    "window_bounds",
    "unify",
    "unify_rank",
    "unify_gaussian",
    "unify_minmax",
    "fuse",
    "fuse_max",
    "fuse_mean",
    "fuse_weighted",
    "fuse_fisher",
    "FUSION_STRATEGIES",
    "DEFAULT_LEVEL_WEIGHTS",
    "TypeClassification",
    "classify_outlier_type",
    "effect_profile",
    "PipelineConfig",
    "PipelineStats",
    "PlantHierarchyContext",
    "HierarchicalDetectionPipeline",
    "ParallelEngine",
    "TaskGraph",
    "Task",
    "EngineStats",
    "EXECUTORS",
    "derive_task_seed",
    "resolve_workers",
    "RunHealth",
    "FallbackEvent",
    "QuarantineEvent",
    "DetectorSandbox",
    "SandboxPolicy",
    "SandboxOutcome",
    "QualityPolicy",
    "QualityIssue",
    "assess_series",
    "repair_series",
    "robust_fallback_scores",
    "robust_matrix_scores",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotError",
    "SnapshotStore",
    "CheckpointManager",
    "resume_pipeline",
    "register_migration",
    "pack_detector",
    "unpack_detector",
]
