"""Fig.-1 outlier-type classification.

Once a detector has localized an outlier onset, the *shape* of the
disturbance distinguishes the four canonical types: an additive outlier is
a one-sample impulse, an innovative outlier follows the process's own
impulse response, a temporary change decays geometrically, and a level
shift persists.  The classifier fits all four intervention profiles to the
observed deviation from the AR counterfactual forecast and picks the best
least-squares explanation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..detectors.predictive import fit_ar_coefficients
from ..synthetic import OutlierType
from ..timeseries import TimeSeries

__all__ = ["TypeClassification", "classify_outlier_type", "effect_profile"]

_RHO_GRID = np.linspace(0.4, 0.95, 12)


@dataclass(frozen=True)
class TypeClassification:
    """Classification outcome with per-hypothesis fit errors."""

    outlier_type: OutlierType
    magnitude: float
    errors: Dict[OutlierType, float]
    confidence: float

    def describe(self) -> str:
        ranked = sorted(self.errors.items(), key=lambda kv: kv[1])
        alts = ", ".join(f"{t.value}={e:.3f}" for t, e in ranked)
        return (
            f"type={self.outlier_type.value} magnitude={self.magnitude:+.2f} "
            f"confidence={self.confidence:.2f} (rmse: {alts})"
        )


def _ma_weights(coefficients: np.ndarray, n: int) -> np.ndarray:
    psi = np.zeros(n)
    if n == 0:
        return psi
    psi[0] = 1.0
    for t in range(1, n):
        acc = 0.0
        for k in range(min(len(coefficients), t)):
            acc += coefficients[k] * psi[t - 1 - k]
        psi[t] = acc
    return psi


def effect_profile(
    series: TimeSeries,
    onset: int,
    ar_order: int = 3,
    horizon: int = 30,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Deviation of the observed path from the AR counterfactual forecast.

    The AR model is fitted on the pre-onset prefix, then iterated forward
    from the onset (multi-step forecast).  Returns ``(effect, psi, sigma)``:
    the per-step deviation, the model's impulse-response weights, and the
    innovation scale.
    """
    x = np.nan_to_num(series.values.astype(np.float64), nan=0.0)
    n = len(x)
    if not 0 <= onset < n:
        raise IndexError(f"onset {onset} outside series of length {n}")
    prefix = x[:onset]
    order = min(ar_order, max(1, len(prefix) // 5))
    if len(prefix) <= order + 2:
        raise ValueError(
            f"need more than {order + 2} pre-onset samples to classify, got {len(prefix)}"
        )
    coeffs, intercept, sigma = fit_ar_coefficients(prefix, order)
    h = min(horizon, n - onset)
    history = list(prefix[-order:])
    forecast = np.empty(h)
    for k in range(h):
        pred = intercept + float(
            np.dot(coeffs, history[::-1][: len(coeffs)])
        )
        forecast[k] = pred
        history.append(pred)
        history = history[-order:]
    effect = x[onset : onset + h] - forecast
    psi = _ma_weights(coeffs, h)
    return effect, psi, max(sigma, 1e-9)


def _hypothesis_errors(effect: np.ndarray, psi: np.ndarray) -> Dict[OutlierType, Tuple[float, float]]:
    """(rmse, fitted magnitude) of each Fig.-1 intervention profile."""
    h = len(effect)
    out: Dict[OutlierType, Tuple[float, float]] = {}

    # additive: impulse at k=0 only
    c = effect[0]
    residual = effect.copy()
    residual[0] = 0.0
    out[OutlierType.ADDITIVE] = (float(np.sqrt(np.mean(residual**2))), float(c))

    # level shift: constant from onset
    c = float(effect.mean())
    out[OutlierType.LEVEL_SHIFT] = (
        float(np.sqrt(np.mean((effect - c) ** 2))),
        c,
    )

    # temporary change: geometric decay, rho from a small grid
    best = (np.inf, 0.0)
    k = np.arange(h, dtype=np.float64)
    for rho in _RHO_GRID:
        basis = rho**k
        denom = float((basis * basis).sum())
        c = float((effect * basis).sum() / denom) if denom > 0 else 0.0
        rmse = float(np.sqrt(np.mean((effect - c * basis) ** 2)))
        if rmse < best[0]:
            best = (rmse, c)
    out[OutlierType.TEMPORARY_CHANGE] = best

    # innovative: the process's own impulse response
    denom = float((psi * psi).sum())
    c = float((effect * psi).sum() / denom) if denom > 0 else 0.0
    out[OutlierType.INNOVATIVE] = (
        float(np.sqrt(np.mean((effect - c * psi) ** 2))),
        c,
    )
    return out


def classify_outlier_type(
    series: TimeSeries,
    onset: int,
    ar_order: int = 3,
    horizon: int = 30,
) -> TypeClassification:
    """Fit all four Fig.-1 profiles at ``onset`` and pick the best one.

    Confidence is the relative margin of the winner over the runner-up
    (0 when tied, approaching 1 when the winner explains the deviation far
    better).
    """
    effect, psi, sigma = effect_profile(series, onset, ar_order, horizon)
    effect = effect / sigma
    hypotheses = _hypothesis_errors(effect, psi)
    ranked = sorted(hypotheses.items(), key=lambda kv: kv[1][0])
    (best_type, (best_err, magnitude)) = ranked[0]
    runner_err = ranked[1][1][0] if len(ranked) > 1 else best_err
    if runner_err <= 1e-12:
        confidence = 0.0
    else:
        confidence = float(np.clip(1.0 - best_err / runner_err, 0.0, 1.0))
    return TypeClassification(
        outlier_type=best_type,
        magnitude=float(magnitude * sigma),
        errors={t: e for t, (e, __) in hypotheses.items()},
        confidence=confidence,
    )
