"""Synthetic bibliographic corpus + query engine (the Fig.-3 substrate)."""

from .fig3 import FIELD_TERMS, Fig3Row, counts_by_field, run_fig3_queries
from .generator import (
    ACS_CATEGORY,
    FIELD_PROFILES,
    TIME_SERIES_TOPIC,
    FieldProfile,
    expected_counts,
    generate_corpus,
)
from .records import CorpusIndex, PaperRecord, Query

__all__ = [
    "PaperRecord",
    "Query",
    "CorpusIndex",
    "FieldProfile",
    "FIELD_PROFILES",
    "TIME_SERIES_TOPIC",
    "ACS_CATEGORY",
    "generate_corpus",
    "expected_counts",
    "Fig3Row",
    "run_fig3_queries",
    "counts_by_field",
    "FIELD_TERMS",
]
