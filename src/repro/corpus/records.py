"""Bibliographic record model and inverted-index query engine.

Fig. 3 of the paper counts Web-of-Science articles per outlier-detection
synonym, "filtered with the word time series and afterwards limited to
those items that are connected to the category automation control systems".
Web of Science is proprietary; this module provides the query semantics —
records with title terms, topic keywords, and subject categories, searched
with conjunctive boolean queries — so the synthetic corpus in
:mod:`repro.corpus.generator` can reproduce the figure's query workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

__all__ = ["PaperRecord", "Query", "CorpusIndex"]


def _normalize(text: str) -> str:
    return " ".join(text.lower().split())


@dataclass(frozen=True)
class PaperRecord:
    """One bibliographic record.

    ``title_terms`` are the searchable phrases of the title, ``topics`` the
    keyword phrases, and ``categories`` the subject categories — the three
    fields the Fig.-3 queries touch.
    """

    record_id: int
    title_terms: Tuple[str, ...]
    topics: Tuple[str, ...]
    categories: Tuple[str, ...]
    year: int = 2018

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "title_terms", tuple(_normalize(t) for t in self.title_terms)
        )
        object.__setattr__(
            self, "topics", tuple(_normalize(t) for t in self.topics)
        )
        object.__setattr__(
            self, "categories", tuple(_normalize(c) for c in self.categories)
        )


@dataclass(frozen=True)
class Query:
    """A conjunctive query: term AND all topics AND all categories.

    Empty components are unconstrained, so dropping a component can only
    grow the result set (the monotonicity property the tests check).
    """

    term: str = ""
    topics: Tuple[str, ...] = ()
    categories: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "term", _normalize(self.term))
        object.__setattr__(self, "topics", tuple(_normalize(t) for t in self.topics))
        object.__setattr__(
            self, "categories", tuple(_normalize(c) for c in self.categories)
        )

    def relax_categories(self) -> "Query":
        return Query(self.term, self.topics, ())

    def relax_topics(self) -> "Query":
        return Query(self.term, (), self.categories)


class CorpusIndex:
    """Inverted indices over a record collection with conjunctive search."""

    def __init__(self, records: Sequence[PaperRecord]) -> None:
        self._records: List[PaperRecord] = list(records)
        self._by_term: Dict[str, Set[int]] = {}
        self._by_topic: Dict[str, Set[int]] = {}
        self._by_category: Dict[str, Set[int]] = {}
        for rec in self._records:
            for t in rec.title_terms:
                self._by_term.setdefault(t, set()).add(rec.record_id)
            for t in rec.topics:
                self._by_topic.setdefault(t, set()).add(rec.record_id)
            for c in rec.categories:
                self._by_category.setdefault(c, set()).add(rec.record_id)
        self._all_ids: FrozenSet[int] = frozenset(r.record_id for r in self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[PaperRecord]:
        return list(self._records)

    def search(self, query: Query) -> FrozenSet[int]:
        """Record ids matching every component of the query."""
        result: Set[int] = set(self._all_ids)
        if query.term:
            result &= self._by_term.get(query.term, set())
        for topic in query.topics:
            result &= self._by_topic.get(topic, set())
        for category in query.categories:
            result &= self._by_category.get(category, set())
        return frozenset(result)

    def count(self, query: Query) -> int:
        return len(self.search(query))

    def vocabulary(self) -> Dict[str, int]:
        """Observed title terms with their document frequencies."""
        return {t: len(ids) for t, ids in self._by_term.items()}
