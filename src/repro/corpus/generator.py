"""Synthetic bibliographic corpus calibrated to the Fig.-3 query workload.

Each synthetic record is assigned a research field (one of the paper's
eight outlier-detection synonyms, or unrelated background), carries the
field term in its title with field-specific probability, the topic keyword
``"time series"`` with field-specific probability, and a set of subject
categories that includes ``"automation control systems"`` with
field-specific probability.  The per-field parameters are chosen so the
expected query counts reproduce the *shape* of the paper's bar chart:
anomaly detection and fault detection dominate, deviant discovery is
nearly absent, and fault detection carries the largest
automation-control-systems share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .records import CorpusIndex, PaperRecord

__all__ = [
    "FieldProfile",
    "FIELD_PROFILES",
    "TIME_SERIES_TOPIC",
    "ACS_CATEGORY",
    "generate_corpus",
]

TIME_SERIES_TOPIC = "time series"
ACS_CATEGORY = "automation control systems"

_OTHER_TOPICS = (
    "machine learning", "neural networks", "signal processing",
    "data mining", "statistics", "industry 4.0", "monitoring",
)
_OTHER_CATEGORIES = (
    "computer science", "engineering electrical", "mathematics",
    "telecommunications", "instrumentation", "operations research",
)


@dataclass(frozen=True)
class FieldProfile:
    """Calibration of one Fig.-3 research field.

    ``share`` is the field's fraction of the corpus; ``p_time_series`` and
    ``p_acs`` the conditional probabilities of the two filters.  Expected
    filtered count = ``n_records * share * p_time_series`` (times ``p_acs``
    for the category-restricted bar).
    """

    term: str
    share: float
    p_time_series: float
    p_acs: float


#: Eight fields in the paper's left-to-right bar order.  Calibrated for a
#: 60k-record corpus so the term+time-series counts land near the paper's
#: bar heights (y-axis up to ~2000).
FIELD_PROFILES: Tuple[FieldProfile, ...] = (
    FieldProfile("anomaly detection", share=0.060, p_time_series=0.50, p_acs=0.055),
    FieldProfile("outlier detection", share=0.022, p_time_series=0.42, p_acs=0.050),
    FieldProfile("event detection", share=0.030, p_time_series=0.33, p_acs=0.040),
    FieldProfile("novelty detection", share=0.007, p_time_series=0.36, p_acs=0.045),
    FieldProfile("deviant discovery", share=0.0004, p_time_series=0.25, p_acs=0.02),
    FieldProfile("change point detection", share=0.016, p_time_series=0.55, p_acs=0.035),
    FieldProfile("fault detection", share=0.052, p_time_series=0.48, p_acs=0.16),
    FieldProfile("intrusion detection", share=0.030, p_time_series=0.22, p_acs=0.045),
)


def generate_corpus(
    n_records: int = 60_000,
    seed: int = 0,
    profiles: Tuple[FieldProfile, ...] = FIELD_PROFILES,
) -> CorpusIndex:
    """Generate the synthetic corpus and return its search index."""
    if n_records < 1:
        raise ValueError("n_records must be >= 1")
    rng = np.random.default_rng(seed)
    shares = np.array([p.share for p in profiles])
    if shares.sum() >= 1.0:
        raise ValueError("field shares must sum to < 1 (rest is background)")
    probs = np.concatenate([shares, [1.0 - shares.sum()]])
    assignments = rng.choice(len(probs), size=n_records, p=probs)

    records: List[PaperRecord] = []
    for rid in range(n_records):
        field_idx = int(assignments[rid])
        title_terms: List[str] = []
        topics: List[str] = []
        categories: List[str] = []
        if field_idx < len(profiles):
            profile = profiles[field_idx]
            title_terms.append(profile.term)
            if rng.random() < profile.p_time_series:
                topics.append(TIME_SERIES_TOPIC)
            if rng.random() < profile.p_acs:
                categories.append(ACS_CATEGORY)
        else:
            # background literature: occasionally time-series flavoured
            if rng.random() < 0.04:
                topics.append(TIME_SERIES_TOPIC)
            if rng.random() < 0.01:
                categories.append(ACS_CATEGORY)
        # generic decoration shared by all records
        n_extra_topics = int(rng.integers(1, 4))
        topics.extend(
            str(t) for t in rng.choice(_OTHER_TOPICS, size=n_extra_topics, replace=False)
        )
        n_extra_cats = int(rng.integers(1, 3))
        categories.extend(
            str(c) for c in rng.choice(_OTHER_CATEGORIES, size=n_extra_cats, replace=False)
        )
        records.append(
            PaperRecord(
                record_id=rid,
                title_terms=tuple(title_terms),
                topics=tuple(topics),
                categories=tuple(categories),
                year=int(rng.integers(1995, 2019)),
            )
        )
    return CorpusIndex(records)


def expected_counts(
    n_records: int,
    profiles: Tuple[FieldProfile, ...] = FIELD_PROFILES,
) -> Dict[str, Tuple[float, float]]:
    """Analytic expectation of (time-series count, +ACS count) per field."""
    out: Dict[str, Tuple[float, float]] = {}
    for p in profiles:
        ts = n_records * p.share * p.p_time_series
        acs = ts * p.p_acs
        out[p.term] = (ts, acs)
    return out
