"""The Fig.-3 query workload: eight fields × two filter levels.

"Each term was filtered with the word time series and afterwards limited to
those items that are connected to the category automation control systems"
(Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .generator import ACS_CATEGORY, TIME_SERIES_TOPIC, FIELD_PROFILES
from .records import CorpusIndex, Query

__all__ = ["Fig3Row", "run_fig3_queries", "FIELD_TERMS"]

FIELD_TERMS = tuple(p.term for p in FIELD_PROFILES)


@dataclass(frozen=True)
class Fig3Row:
    """One bar pair of Fig. 3."""

    field: str
    time_series_count: int
    acs_count: int


def run_fig3_queries(index: CorpusIndex) -> List[Fig3Row]:
    """Run the paper's sixteen queries against a corpus index."""
    rows: List[Fig3Row] = []
    for term in FIELD_TERMS:
        ts_query = Query(term=term, topics=(TIME_SERIES_TOPIC,))
        acs_query = Query(
            term=term, topics=(TIME_SERIES_TOPIC,), categories=(ACS_CATEGORY,)
        )
        rows.append(
            Fig3Row(
                field=term,
                time_series_count=index.count(ts_query),
                acs_count=index.count(acs_query),
            )
        )
    return rows


def counts_by_field(rows: List[Fig3Row]) -> Dict[str, int]:
    """The time-series-filtered count per field (the main Fig.-3 bars)."""
    return {r.field: r.time_series_count for r in rows}
