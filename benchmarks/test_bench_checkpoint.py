"""Perf benchmark — checkpoint snapshot cost and warm-restart speed.

The checkpoint tentpole's contract: a snapshot write is a cheap, bounded
serialization of derived state (milliseconds, not a re-scan), and a warm
restart from the newest snapshot replays *only the jobs past the ingest
watermark* — so resume time is governed by the tail length, not by plant
history, and stays well below the cold build it replaces.  Each plant
size also cross-checks the headline correctness guarantee: the resumed
pipeline serializes byte-identically to a cold rebuild on the full
dataset.

The resume-vs-cold gate tolerates a 0.9 ratio by default; relax via
``REPRO_BENCH_CHECKPOINT_RATIO_MAX`` on noisy CI boxes.
"""

from __future__ import annotations

import os
import time

from repro.core import (
    HierarchicalDetectionPipeline,
    PipelineConfig,
    resume_pipeline,
)
from repro.io import reports_to_json
from repro.plant import FaultConfig, PlantConfig, simulate_plant

#: (n_lines, machines_per_line) — jobs_per_machine stays constant so the
#: replayed tail (what resume re-scores) is size-invariant.
SIZES = ((1, 2), (2, 3), (3, 4))
JOBS_PER_MACHINE = 6
TAIL = 2  # held-out jobs per machine, ingested as arrivals
REPLAY = 2  # arrivals past the snapshot watermark (what resume replays)


def _plant(n_lines: int, machines_per_line: int):
    return simulate_plant(
        PlantConfig(
            seed=2019,
            n_lines=n_lines,
            machines_per_line=machines_per_line,
            jobs_per_machine=JOBS_PER_MACHINE,
            faults=FaultConfig(
                process_fault_rate=0.15,
                sensor_fault_rate=0.15,
                setup_anomaly_rate=0.06,
            ),
        )
    )


def _bench_size(n_lines: int, machines_per_line: int, snap_dir) -> dict:
    dataset = _plant(n_lines, machines_per_line)
    started = time.perf_counter()
    cold = HierarchicalDetectionPipeline(dataset)
    cold_s = time.perf_counter() - started

    # Checkpointed run: build on the base plant, ingest the tail up to
    # the last REPLAY jobs, snapshot mid-stream, ingest the rest — then
    # SIGKILL-equivalent: drop the process state and warm-restart from
    # disk.  The replayed tail is fixed, so resume cost tracks the tail
    # while the cold build it replaces grows with the plant.
    config = PipelineConfig(
        checkpoint_dir=str(snap_dir), checkpoint_every=10_000
    )
    base, arrivals = dataset.split_tail(TAIL)
    warm = HierarchicalDetectionPipeline(base, config=config)
    cut = len(arrivals) - REPLAY
    for machine_id, job in arrivals[:cut]:
        warm.ingest_job(machine_id, job)
    t0 = time.perf_counter()
    path = warm.checkpoint.snapshot(trigger="manual")
    snapshot_s = time.perf_counter() - t0
    snapshot_kb = path.stat().st_size / 1024.0
    for machine_id, job in arrivals[cut:]:
        warm.ingest_job(machine_id, job)
    del warm

    t0 = time.perf_counter()
    resumed, summaries, __ = resume_pipeline(dataset, snap_dir)
    resume_s = time.perf_counter() - t0

    identical = reports_to_json(
        resumed.run(), health=resumed.health
    ) == reports_to_json(cold.run(), health=cold.health)
    return {
        "lines": n_lines,
        "machines": n_lines * machines_per_line,
        "jobs": sum(1 for __ in dataset.iter_jobs()),
        "cold_s": cold_s,
        "snapshot_ms": snapshot_s * 1e3,
        "resume_ms": resume_s * 1e3,
        "snapshot_kb": snapshot_kb,
        "tail": len(summaries),
        "identical": identical,
    }


def _format(rows, ratio: float, identical: bool) -> str:
    lines = [
        "Checkpoint / warm-restart — snapshot cost and resume speed vs "
        f"plant size (jobs/machine fixed at {JOBS_PER_MACHINE}, tail {TAIL})",
        "",
        f"{'lines':>5s} {'machines':>8s} {'jobs':>5s} {'cold_s':>8s} "
        f"{'snapshot_ms':>11s} {'resume_ms':>9s} {'snapshot_kb':>11s} "
        f"{'tail':>4s}",
    ]
    for row in rows:
        lines.append(
            f"{row['lines']:5d} {row['machines']:8d} {row['jobs']:5d} "
            f"{row['cold_s']:8.3f} {row['snapshot_ms']:11.1f} "
            f"{row['resume_ms']:9.1f} {row['snapshot_kb']:11.1f} "
            f"{row['tail']:4d}"
        )
    lines.append("")
    lines.append(f"reports byte-identical (resumed vs cold): {identical}")
    lines.append(f"resume ratio: {ratio:.3f}")
    return "\n".join(lines)


def test_bench_checkpoint(emit, tmp_path):
    rows = [
        _bench_size(n_lines, machines, tmp_path / f"snaps-{n_lines}-{machines}")
        for n_lines, machines in SIZES
    ]
    # resume (restore + tail replay) vs the cold build it replaces, on
    # the largest plant — the size where skipping history matters most.
    ratio = (rows[-1]["resume_ms"] / 1e3) / rows[-1]["cold_s"]
    identical = all(row["identical"] for row in rows)
    emit("checkpoint", _format(rows, ratio, identical))

    # correctness first: warm restart must be behaviourally invisible
    assert identical, "resumed pipeline diverged from a cold rebuild"

    # resume replays only the post-watermark tail, never full history
    assert [row["tail"] for row in rows] == [REPLAY] * len(SIZES), (
        "resume replayed a different tail than the jobs past the watermark"
    )

    ratio_max = float(os.environ.get("REPRO_BENCH_CHECKPOINT_RATIO_MAX", "0.9"))
    assert ratio <= ratio_max, (
        f"warm restart took {ratio:.2f}x the cold build on the largest "
        f"plant; expected <= {ratio_max}x (resume must skip the "
        "already-scored history)"
    )
