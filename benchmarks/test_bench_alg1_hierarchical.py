"""Experiment ``alg1`` — Algorithm 1 vs. a flat single-level baseline.

The paper proposes the ⟨global score, outlierness, support⟩ triple but
defers evaluation.  This benchmark supplies it on the simulated plant,
replicated over three seeds:

* **ranking quality** — precision@k / average precision for *process
  faults* among phase-level candidates, hierarchical triple ranking vs.
  flat outlierness-only ranking;
* **measurement-error separation** — mean support of process faults vs.
  sensor faults on the redundant sensor pair;
* **warning accuracy** — job-level candidates without phase-level
  confirmation ("wrong measurement assumed") vs. ground truth: setup
  anomalies and CAQ noise have no phase trace, process faults do.
"""

from __future__ import annotations

import numpy as np

from repro.eval import aggregate, evaluate_alg1, replicate_alg1

SEEDS = (2019, 2020, 2021)


def _format(per_seed, agg) -> str:
    lines = [
        "Algorithm 1 evaluation — hierarchical triple vs flat baseline",
        f"replicated over seeds {SEEDS}",
        "",
        f"{'seed':>6s} {'hier P@5':>9s} {'hier P@10':>10s} {'hier AP':>8s} "
        f"{'flat P@5':>9s} {'flat P@10':>10s} {'flat AP':>8s}",
    ]
    for seed, m in zip(SEEDS, per_seed):
        lines.append(
            f"{seed:>6d} {m.hier_p5:9.2f} {m.hier_p10:10.2f} {m.hier_ap:8.3f} "
            f"{m.flat_p5:9.2f} {m.flat_p10:10.2f} {m.flat_ap:8.3f}"
        )
    lines.append(
        f"{'mean':>6s} {agg['hier_p5']:9.2f} {agg['hier_p10']:10.2f} "
        f"{agg['hier_ap']:8.3f} {agg['flat_p5']:9.2f} "
        f"{agg['flat_p10']:10.2f} {agg['flat_ap']:8.3f}"
    )
    lines += [
        "",
        f"mean support | process faults: {agg['support_process']:.2f}"
        f"   sensor faults: {agg['support_sensor']:.2f}",
        f"mean job-level warning accuracy: {agg['warning_accuracy']:.2f}",
        f"global-score histogram (seed {SEEDS[0]}): {per_seed[0].global_histogram}",
    ]
    return "\n".join(lines)


def test_bench_alg1_hierarchical(benchmark, emit):
    per_seed = benchmark.pedantic(
        lambda: replicate_alg1(SEEDS), rounds=1, iterations=1
    )
    agg = aggregate(per_seed)
    emit("alg1_hierarchical", _format(per_seed, agg))

    # the paper's qualitative claims, asserted on the replication mean:
    # 1. hierarchical evidence ranks real process faults at least as well as
    #    flat outlierness, and strictly better in expectation
    assert agg["hier_p5"] >= agg["flat_p5"] - 1e-9
    assert agg["hier_p10"] > agg["flat_p10"]
    assert agg["hier_ap"] > agg["flat_ap"]
    # 2. support separates real faults from measurement errors
    assert agg["support_process"] > agg["support_sensor"] + 0.3
    # 3. warnings at higher levels mostly point at phase-invisible anomalies
    assert agg["warning_accuracy"] >= 0.6
    # 4. global scores actually spread beyond the start level (every seed)
    for m in per_seed:
        assert sum(m.global_histogram[2:]) > 0
