"""Collect benchmark text reports into machine-readable JSON.

The benchmarks under this directory each write one human-readable table
to ``benchmarks/out/<name>.txt`` (see ``conftest.py``); those tables
feed EXPERIMENTS.md but are opaque to tooling.  This collector re-emits
every text report — plus a parsed form of the parallel-speedup table —
as ``benchmarks/out/BENCH_parallel.json``, so the perf trajectory is
trackable across PRs (CI uploads the file as an artifact).  When the
incremental-ingest bench has run, its table is parsed the same way and
written separately as ``benchmarks/out/BENCH_incremental.json``.

Usage::

    python benchmarks/to_json.py [--out PATH] [--incremental-out PATH]
                                 [--checkpoint-out PATH]

Exits non-zero when no benchmark output exists yet (run the benches
first: ``PYTHONPATH=src python -m pytest benchmarks/``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.atomic import write_atomic  # noqa: E402

OUT_DIR = pathlib.Path(__file__).parent / "out"
DEFAULT_TARGET = OUT_DIR / "BENCH_parallel.json"
DEFAULT_INCREMENTAL_TARGET = OUT_DIR / "BENCH_incremental.json"
DEFAULT_CHECKPOINT_TARGET = OUT_DIR / "BENCH_checkpoint.json"

#: Columns of the parallel_speedup.txt table, in order.
_SPEEDUP_COLUMNS = (
    "executor", "workers", "tasks", "wall_s", "speedup", "vs_serial"
)


def parse_speedup_table(text: str) -> dict:
    """Parse ``parallel_speedup.txt`` into per-executor rows.

    Returns ``{"rows": [{executor, workers, tasks, wall_s, speedup,
    vs_serial}], "identical_reports": bool}``; tolerant of the header
    and trailing prose lines.
    """
    rows = []
    identical = None
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == len(_SPEEDUP_COLUMNS) and parts[0] in (
            "serial", "thread", "process"
        ):
            rows.append(
                {
                    "executor": parts[0],
                    "workers": int(parts[1]),
                    "tasks": int(parts[2]),
                    "wall_s": float(parts[3]),
                    "speedup": float(parts[4]),
                    "vs_serial": float(parts[5]),
                }
            )
        elif line.startswith("reports byte-identical"):
            identical = line.rsplit(":", 1)[1].strip() == "True"
    return {"rows": rows, "identical_reports": identical}


#: Columns of the incremental.txt table, in order.
_INCREMENTAL_COLUMNS = ("lines", "machines", "ingests", "p50_ms", "p99_ms", "cold_s")


def parse_incremental_table(text: str) -> dict:
    """Parse ``incremental.txt`` into per-plant-size rows.

    Returns ``{"rows": [{lines, machines, ingests, p50_ms, p99_ms,
    cold_s}], "identical_reports": bool, "p50_ratio": float}``; tolerant
    of the header and trailing prose lines.
    """
    rows = []
    identical = None
    ratio = None
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == len(_INCREMENTAL_COLUMNS) and all(
            p.replace(".", "", 1).isdigit() for p in parts
        ):
            rows.append(
                {
                    "lines": int(parts[0]),
                    "machines": int(parts[1]),
                    "ingests": int(parts[2]),
                    "p50_ms": float(parts[3]),
                    "p99_ms": float(parts[4]),
                    "cold_s": float(parts[5]),
                }
            )
        elif line.startswith("reports byte-identical"):
            identical = line.rsplit(":", 1)[1].strip() == "True"
        elif line.startswith("p50 ratio"):
            ratio = float(line.rsplit(":", 1)[1])
    return {"rows": rows, "identical_reports": identical, "p50_ratio": ratio}


#: Columns of the checkpoint.txt table, in order.
_CHECKPOINT_COLUMNS = (
    "lines", "machines", "jobs", "cold_s", "snapshot_ms", "resume_ms",
    "snapshot_kb", "tail",
)


def parse_checkpoint_table(text: str) -> dict:
    """Parse ``checkpoint.txt`` into per-plant-size rows.

    Returns ``{"rows": [{lines, machines, jobs, cold_s, snapshot_ms,
    resume_ms, snapshot_kb, tail}], "identical_reports": bool,
    "resume_ratio": float}``; tolerant of the header and trailing prose
    lines.
    """
    rows = []
    identical = None
    ratio = None
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == len(_CHECKPOINT_COLUMNS) and all(
            p.replace(".", "", 1).isdigit() for p in parts
        ):
            rows.append(
                {
                    "lines": int(parts[0]),
                    "machines": int(parts[1]),
                    "jobs": int(parts[2]),
                    "cold_s": float(parts[3]),
                    "snapshot_ms": float(parts[4]),
                    "resume_ms": float(parts[5]),
                    "snapshot_kb": float(parts[6]),
                    "tail": int(parts[7]),
                }
            )
        elif line.startswith("reports byte-identical"):
            identical = line.rsplit(":", 1)[1].strip() == "True"
        elif line.startswith("resume ratio"):
            ratio = float(line.rsplit(":", 1)[1])
    return {"rows": rows, "identical_reports": identical, "resume_ratio": ratio}


def collect(out_dir: pathlib.Path = OUT_DIR) -> dict:
    """Bundle every ``*.txt`` bench report, parsing the speedup table."""
    reports = sorted(out_dir.glob("*.txt"))
    doc: dict = {
        "schema": "repro.bench/1",
        "benches": {},
    }
    for path in reports:
        text = path.read_text().rstrip("\n")
        entry: dict = {"text": text}
        if path.stem == "parallel_speedup":
            entry["parsed"] = parse_speedup_table(text)
        elif path.stem == "incremental":
            entry["parsed"] = parse_incremental_table(text)
        elif path.stem == "checkpoint":
            entry["parsed"] = parse_checkpoint_table(text)
        doc["benches"][path.stem] = entry
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_TARGET,
        help=f"target JSON path (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--incremental-out", type=pathlib.Path,
        default=DEFAULT_INCREMENTAL_TARGET,
        help="target JSON path for the incremental-ingest bench "
        f"(default: {DEFAULT_INCREMENTAL_TARGET}; written only when "
        "the bench has run)",
    )
    parser.add_argument(
        "--checkpoint-out", type=pathlib.Path,
        default=DEFAULT_CHECKPOINT_TARGET,
        help="target JSON path for the checkpoint/resume bench "
        f"(default: {DEFAULT_CHECKPOINT_TARGET}; written only when "
        "the bench has run)",
    )
    args = parser.parse_args(argv)
    doc = collect()
    if not doc["benches"]:
        print(
            "no benchmark output under benchmarks/out/ — run "
            "`PYTHONPATH=src python -m pytest benchmarks/` first",
            file=sys.stderr,
        )
        return 1
    args.out.parent.mkdir(parents=True, exist_ok=True)
    write_atomic(args.out, json.dumps(doc, indent=2) + "\n")
    print(
        f"wrote {args.out} ({len(doc['benches'])} bench report(s)"
        + (
            ", parallel_speedup parsed"
            if "parallel_speedup" in doc["benches"]
            else ""
        )
        + ")"
    )
    if "incremental" in doc["benches"]:
        incremental_doc = {
            "schema": "repro.bench/1",
            "benches": {"incremental": doc["benches"]["incremental"]},
        }
        args.incremental_out.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(
            args.incremental_out, json.dumps(incremental_doc, indent=2) + "\n"
        )
        print(f"wrote {args.incremental_out} (incremental parsed)")
    if "checkpoint" in doc["benches"]:
        checkpoint_doc = {
            "schema": "repro.bench/1",
            "benches": {"checkpoint": doc["benches"]["checkpoint"]},
        }
        args.checkpoint_out.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(
            args.checkpoint_out, json.dumps(checkpoint_doc, indent=2) + "\n"
        )
        print(f"wrote {args.checkpoint_out} (checkpoint parsed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
