"""Collect benchmark text reports into machine-readable JSON.

The benchmarks under this directory each write one human-readable table
to ``benchmarks/out/<name>.txt`` (see ``conftest.py``); those tables
feed EXPERIMENTS.md but are opaque to tooling.  This collector re-emits
every text report — plus a parsed form of the parallel-speedup table —
as ``benchmarks/out/BENCH_parallel.json``, so the perf trajectory is
trackable across PRs (CI uploads the file as an artifact).  When the
incremental-ingest bench has run, its table is parsed the same way and
written separately as ``benchmarks/out/BENCH_incremental.json``.

Every emitted document is stamped with run metadata (git SHA, CPU
count, a hostname hash, a UTC timestamp, and the schema version) so two
``BENCH_*.json`` files from different PRs can be compared with
``repro perf diff``; an aggregating ``BENCH_index.json`` lists every
artifact written by the run together with its flattened headline
metrics.

Usage::

    python benchmarks/to_json.py [--out PATH] [--incremental-out PATH]
                                 [--checkpoint-out PATH] [--index-out PATH]

Exits non-zero when no benchmark output exists yet (run the benches
first: ``PYTHONPATH=src python -m pytest benchmarks/``).
"""

from __future__ import annotations

import argparse
import datetime
import hashlib
import json
import os
import pathlib
import socket
import subprocess
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.atomic import write_atomic  # noqa: E402
from repro.obs import extract_perf_metrics  # noqa: E402

OUT_DIR = pathlib.Path(__file__).parent / "out"
DEFAULT_TARGET = OUT_DIR / "BENCH_parallel.json"
DEFAULT_INCREMENTAL_TARGET = OUT_DIR / "BENCH_incremental.json"
DEFAULT_CHECKPOINT_TARGET = OUT_DIR / "BENCH_checkpoint.json"
DEFAULT_INDEX_TARGET = OUT_DIR / "BENCH_index.json"

#: Schema tag of stamped per-bench documents.  /1 documents (no ``meta``
#: block) remain readable by ``repro perf diff``.
BENCH_SCHEMA = "repro.bench/2"

#: Schema tag of the aggregating index document.
INDEX_SCHEMA = "repro.bench-index/1"


def _git_sha() -> str:
    """The checkout's commit SHA, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parents[1],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def run_metadata() -> dict:
    """The provenance block stamped into every emitted document.

    The hostname is hashed, not recorded: enough to tell two runners
    apart in a diff without leaking machine names into committed
    baselines.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux: no affinity API
        cpus = os.cpu_count() or 1
    return {
        "git_sha": _git_sha(),
        "cpu_count": cpus,
        "hostname_hash": hashlib.sha256(
            socket.gethostname().encode("utf-8")
        ).hexdigest()[:12],
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "schema_version": BENCH_SCHEMA,
    }

#: Columns of the parallel_speedup.txt table, in order.
_SPEEDUP_COLUMNS = (
    "executor", "workers", "tasks", "wall_s", "speedup", "vs_serial"
)


def parse_speedup_table(text: str) -> dict:
    """Parse ``parallel_speedup.txt`` into per-executor rows.

    Returns ``{"rows": [{executor, workers, tasks, wall_s, speedup,
    vs_serial}], "identical_reports": bool, "transport": dict | None}``;
    tolerant of the header and trailing prose lines.
    """
    rows = []
    identical = None
    transport = None
    for line in text.splitlines():
        parts = line.split()
        if line.startswith("process transport:"):
            fields = dict(
                pair.split("=", 1)
                for pair in line.split(":", 1)[1].split()
                if "=" in pair
            )
            transport = {
                "bytes_pickled": int(fields.get("bytes_pickled", 0)),
                "bytes_shared": int(fields.get("bytes_shared", 0)),
                "encode_s": float(fields.get("encode_s", 0.0)),
                "decode_s": float(fields.get("decode_s", 0.0)),
            }
        elif len(parts) == len(_SPEEDUP_COLUMNS) and parts[0] in (
            "serial", "thread", "process"
        ):
            rows.append(
                {
                    "executor": parts[0],
                    "workers": int(parts[1]),
                    "tasks": int(parts[2]),
                    "wall_s": float(parts[3]),
                    "speedup": float(parts[4]),
                    "vs_serial": float(parts[5]),
                }
            )
        elif line.startswith("reports byte-identical"):
            identical = line.rsplit(":", 1)[1].strip() == "True"
    return {"rows": rows, "identical_reports": identical, "transport": transport}


#: Columns of the detector_batch.txt table, in order.
_DETECTOR_BATCH_COLUMNS = ("detector", "family", "scalar_ms", "batch_ms", "speedup")


def parse_detector_batch_table(text: str) -> dict:
    """Parse ``detector_batch.txt`` into per-detector rows.

    Returns ``{"rows": [{detector, family, scalar_ms, batch_ms,
    speedup}], "max_abs_delta": float | None}``; tolerant of the header
    and trailing prose lines.
    """
    rows = []
    max_delta = None
    for line in text.splitlines():
        parts = line.split()
        if (
            len(parts) == len(_DETECTOR_BATCH_COLUMNS)
            and not line.startswith("detector")
            and all(p.replace(".", "", 1).isdigit() for p in parts[2:])
        ):
            rows.append(
                {
                    "detector": parts[0],
                    "family": parts[1],
                    "scalar_ms": float(parts[2]),
                    "batch_ms": float(parts[3]),
                    "speedup": float(parts[4]),
                }
            )
        elif line.startswith("max |batched - scalar|"):
            max_delta = float(line.rsplit(":", 1)[1])
    return {"rows": rows, "max_abs_delta": max_delta}


#: Columns of the incremental.txt table, in order.
_INCREMENTAL_COLUMNS = ("lines", "machines", "ingests", "p50_ms", "p99_ms", "cold_s")


def parse_incremental_table(text: str) -> dict:
    """Parse ``incremental.txt`` into per-plant-size rows.

    Returns ``{"rows": [{lines, machines, ingests, p50_ms, p99_ms,
    cold_s}], "identical_reports": bool, "p50_ratio": float}``; tolerant
    of the header and trailing prose lines.
    """
    rows = []
    identical = None
    ratio = None
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == len(_INCREMENTAL_COLUMNS) and all(
            p.replace(".", "", 1).isdigit() for p in parts
        ):
            rows.append(
                {
                    "lines": int(parts[0]),
                    "machines": int(parts[1]),
                    "ingests": int(parts[2]),
                    "p50_ms": float(parts[3]),
                    "p99_ms": float(parts[4]),
                    "cold_s": float(parts[5]),
                }
            )
        elif line.startswith("reports byte-identical"):
            identical = line.rsplit(":", 1)[1].strip() == "True"
        elif line.startswith("p50 ratio"):
            ratio = float(line.rsplit(":", 1)[1])
    return {"rows": rows, "identical_reports": identical, "p50_ratio": ratio}


#: Columns of the checkpoint.txt table, in order.
_CHECKPOINT_COLUMNS = (
    "lines", "machines", "jobs", "cold_s", "snapshot_ms", "resume_ms",
    "snapshot_kb", "tail",
)


def parse_checkpoint_table(text: str) -> dict:
    """Parse ``checkpoint.txt`` into per-plant-size rows.

    Returns ``{"rows": [{lines, machines, jobs, cold_s, snapshot_ms,
    resume_ms, snapshot_kb, tail}], "identical_reports": bool,
    "resume_ratio": float}``; tolerant of the header and trailing prose
    lines.
    """
    rows = []
    identical = None
    ratio = None
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == len(_CHECKPOINT_COLUMNS) and all(
            p.replace(".", "", 1).isdigit() for p in parts
        ):
            rows.append(
                {
                    "lines": int(parts[0]),
                    "machines": int(parts[1]),
                    "jobs": int(parts[2]),
                    "cold_s": float(parts[3]),
                    "snapshot_ms": float(parts[4]),
                    "resume_ms": float(parts[5]),
                    "snapshot_kb": float(parts[6]),
                    "tail": int(parts[7]),
                }
            )
        elif line.startswith("reports byte-identical"):
            identical = line.rsplit(":", 1)[1].strip() == "True"
        elif line.startswith("resume ratio"):
            ratio = float(line.rsplit(":", 1)[1])
    return {"rows": rows, "identical_reports": identical, "resume_ratio": ratio}


def collect(out_dir: pathlib.Path = OUT_DIR, meta: dict | None = None) -> dict:
    """Bundle every ``*.txt`` bench report, parsing the known tables."""
    reports = sorted(out_dir.glob("*.txt"))
    doc: dict = {
        "schema": BENCH_SCHEMA,
        "meta": run_metadata() if meta is None else meta,
        "benches": {},
    }
    for path in reports:
        text = path.read_text().rstrip("\n")
        entry: dict = {"text": text}
        if path.stem == "parallel_speedup":
            entry["parsed"] = parse_speedup_table(text)
        elif path.stem == "incremental":
            entry["parsed"] = parse_incremental_table(text)
        elif path.stem == "checkpoint":
            entry["parsed"] = parse_checkpoint_table(text)
        elif path.stem == "detector_batch":
            entry["parsed"] = parse_detector_batch_table(text)
        doc["benches"][path.stem] = entry
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_TARGET,
        help=f"target JSON path (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--incremental-out", type=pathlib.Path,
        default=DEFAULT_INCREMENTAL_TARGET,
        help="target JSON path for the incremental-ingest bench "
        f"(default: {DEFAULT_INCREMENTAL_TARGET}; written only when "
        "the bench has run)",
    )
    parser.add_argument(
        "--checkpoint-out", type=pathlib.Path,
        default=DEFAULT_CHECKPOINT_TARGET,
        help="target JSON path for the checkpoint/resume bench "
        f"(default: {DEFAULT_CHECKPOINT_TARGET}; written only when "
        "the bench has run)",
    )
    parser.add_argument(
        "--index-out", type=pathlib.Path, default=DEFAULT_INDEX_TARGET,
        help="target JSON path for the aggregating artifact index "
        f"(default: {DEFAULT_INDEX_TARGET})",
    )
    args = parser.parse_args(argv)
    meta = run_metadata()
    doc = collect(meta=meta)
    if not doc["benches"]:
        print(
            "no benchmark output under benchmarks/out/ — run "
            "`PYTHONPATH=src python -m pytest benchmarks/` first",
            file=sys.stderr,
        )
        return 1
    written: dict = {}

    def emit(path: pathlib.Path, bench_doc: dict, note: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(path, json.dumps(bench_doc, indent=2) + "\n")
        written[path.name] = {
            "path": str(path),
            "benches": sorted(bench_doc["benches"]),
            "headline": extract_perf_metrics(bench_doc),
        }
        print(f"wrote {path} ({note})")

    emit(
        args.out,
        doc,
        f"{len(doc['benches'])} bench report(s)"
        + (
            ", parallel_speedup parsed"
            if "parallel_speedup" in doc["benches"]
            else ""
        ),
    )
    if "incremental" in doc["benches"]:
        emit(
            args.incremental_out,
            {
                "schema": BENCH_SCHEMA,
                "meta": meta,
                "benches": {"incremental": doc["benches"]["incremental"]},
            },
            "incremental parsed",
        )
    if "checkpoint" in doc["benches"]:
        emit(
            args.checkpoint_out,
            {
                "schema": BENCH_SCHEMA,
                "meta": meta,
                "benches": {"checkpoint": doc["benches"]["checkpoint"]},
            },
            "checkpoint parsed",
        )
    index = {"schema": INDEX_SCHEMA, "meta": meta, "artifacts": written}
    args.index_out.parent.mkdir(parents=True, exist_ok=True)
    write_atomic(args.index_out, json.dumps(index, indent=2) + "\n")
    print(f"wrote {args.index_out} ({len(written)} artifact(s) indexed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
