"""Experiment ``fig1`` — reproduce Figure 1: the four outlier types.

The paper's Fig. 1 *depicts* additive outlier, innovative outlier,
temporary change, and level shift.  The executable version: inject each
type into AR base signals, verify each is (a) detectable by the
phase-level detector and (b) identifiable by its intervention profile.
Reported per type: detection rate (event recall), localization AUC, and
the type-confusion matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core import classify_outlier_type
from repro.detectors import ARDetector
from repro.eval import point_adjust, roc_auc
from repro.synthetic import OutlierType, ar_process, inject

TYPES = (
    OutlierType.ADDITIVE,
    OutlierType.INNOVATIVE,
    OutlierType.TEMPORARY_CHANGE,
    OutlierType.LEVEL_SHIFT,
)
N_TRIALS = 12
N = 600
ONSET_CHOICES = (200, 300, 400)
DELTA = 10.0
PHI = 0.6


def _run_fig1():
    detection = {t: [] for t in TYPES}
    auc = {t: [] for t in TYPES}
    confusion = {t: {u: 0 for u in TYPES} for t in TYPES}

    trial = 0
    for t_idx, otype in enumerate(TYPES):
        for rep in range(N_TRIALS):
            rng = np.random.default_rng(5000 + trial)
            trial += 1
            base = ar_process(N, rng, (PHI,), 1.0)
            onset = ONSET_CHOICES[rep % len(ONSET_CHOICES)]
            kwargs = {}
            if otype is OutlierType.INNOVATIVE:
                kwargs["ar_coefficients"] = (PHI,)
            if otype is OutlierType.TEMPORARY_CHANGE:
                kwargs["rho"] = 0.75
            if otype is OutlierType.LEVEL_SHIFT:
                kwargs["label_span"] = 25
            series, inj = inject(base, otype, onset, DELTA, rng=rng, **kwargs)

            scores = ARDetector(order=3).fit_score_series(series)
            # localization = ranking the *onset* among all samples; the
            # persistent tail of TC/LS/IO is explained by the dynamics once
            # absorbed, so a residual detector rightly scores it low
            onset_labels = np.zeros(N, dtype=bool)
            onset_labels[inj.index] = True
            auc[otype].append(roc_auc(onset_labels, scores))

            span_labels = np.zeros(N, dtype=bool)
            span_labels[inj.index : inj.end] = True
            med = float(np.median(scores))
            mad = float(np.median(np.abs(scores - med))) * 1.4826 or 1.0
            flags = scores >= med + 6 * mad
            adjusted = point_adjust(span_labels, flags)
            detected = bool(adjusted[inj.index : inj.end].any())
            detection[otype].append(detected)

            if detected:
                result = classify_outlier_type(series, onset)
                confusion[otype][result.outlier_type] += 1

    return detection, auc, confusion


def _format(detection, auc, confusion) -> str:
    lines = [
        "Fig. 1 reproduction — four outlier types, AR(0.6) base, delta=10 sigma",
        "",
        f"{'type':18s} {'detect rate':>12s} {'loc AUC':>9s}",
    ]
    for t in TYPES:
        lines.append(
            f"{t.value:18s} {np.mean(detection[t]):12.2f} {np.mean(auc[t]):9.2f}"
        )
    lines.append("")
    lines.append("type-confusion matrix (rows = injected, cols = classified):")
    header = f"{'':18s}" + "".join(f"{u.value[:9]:>10s}" for u in TYPES)
    lines.append(header)
    for t in TYPES:
        total = sum(confusion[t].values()) or 1
        row = "".join(f"{confusion[t][u] / total:10.2f}" for u in TYPES)
        lines.append(f"{t.value:18s}{row}")
    lines.append("")
    lines.append(
        "note: innovative vs temporary change are mathematically adjacent for"
    )
    lines.append(
        "AR(1) bases (the impulse response IS a geometric decay with rho=phi)."
    )
    return "\n".join(lines)


def _detector_comparison():
    """Detect-rate of three detector families per Fig.-1 type."""
    from repro.detectors import DeviantsDetector, KNNDetector

    factories = {
        "ar (PM)": lambda: ARDetector(order=3),
        "deviants (ITM)": lambda: DeviantsDetector(n_buckets=8),
        "knn-window (DA)": lambda: KNNDetector(k=5),
    }
    rates = {name: {t: 0 for t in TYPES} for name in factories}
    trials = 8
    trial = 0
    for otype in TYPES:
        for rep in range(trials):
            rng = np.random.default_rng(9000 + trial)
            trial += 1
            base = ar_process(N, rng, (PHI,), 1.0)
            onset = ONSET_CHOICES[rep % len(ONSET_CHOICES)]
            kwargs = {}
            if otype is OutlierType.INNOVATIVE:
                kwargs["ar_coefficients"] = (PHI,)
            if otype is OutlierType.TEMPORARY_CHANGE:
                kwargs["rho"] = 0.75
            if otype is OutlierType.LEVEL_SHIFT:
                kwargs["label_span"] = 25
            series, inj = inject(base, otype, onset, DELTA, rng=rng, **kwargs)
            span_labels = np.zeros(N, dtype=bool)
            span_labels[inj.index : inj.end] = True
            for name, factory in factories.items():
                det = factory()
                if name.startswith("knn"):
                    scores = det.fit_score_series(series, width=8)
                else:
                    scores = det.fit_score_series(series)
                med = float(np.median(scores))
                mad = float(np.median(np.abs(scores - med))) * 1.4826 or 1.0
                flags = scores >= med + 6 * mad
                adjusted = point_adjust(span_labels, flags)
                rates[name][otype] += int(adjusted[inj.index : inj.end].any())
    return {
        name: {t: hits / trials for t, hits in row.items()}
        for name, row in rates.items()
    }


def _format_comparison(rates) -> str:
    lines = [
        "",
        "detect rate per detector family (8 trials per cell):",
        f"{'detector':18s}" + "".join(f"{t.value[:9]:>10s}" for t in TYPES),
    ]
    for name, row in rates.items():
        lines.append(
            f"{name:18s}" + "".join(f"{row[t]:10.2f}" for t in TYPES)
        )
    return "\n".join(lines)


def test_bench_fig1_outlier_types(benchmark, emit):
    detection, auc, confusion = benchmark.pedantic(
        _run_fig1, rounds=1, iterations=1
    )
    rates = _detector_comparison()
    emit(
        "fig1_outlier_types",
        _format(detection, auc, confusion) + "\n" + _format_comparison(rates),
    )
    # the prediction-model detector handles every type; the point-granular
    # histogram deviants must at least catch the point-like types
    assert all(rates["ar (PM)"][t] >= 0.75 for t in TYPES)
    assert rates["deviants (ITM)"][OutlierType.ADDITIVE] >= 0.75

    # shape assertions: every type detectable and localizable
    for t in TYPES:
        assert np.mean(detection[t]) >= 0.75, f"{t} detection too weak"
        assert np.mean(auc[t]) > 0.8, f"{t} localization too weak"
    # additive is the easiest type for a point detector
    assert np.mean(auc[OutlierType.ADDITIVE]) >= max(
        np.mean(auc[t]) for t in TYPES
    ) - 1e-9
    # classifier: strong diagonal for the unambiguous types
    for t in (OutlierType.ADDITIVE, OutlierType.LEVEL_SHIFT):
        total = sum(confusion[t].values()) or 1
        assert confusion[t][t] / total >= 0.6, f"{t} confusion too high"
    # the two decay-shaped types must at least land within {IO, TC}
    for t in (OutlierType.INNOVATIVE, OutlierType.TEMPORARY_CHANGE):
        total = sum(confusion[t].values()) or 1
        decayish = (
            confusion[t][OutlierType.INNOVATIVE]
            + confusion[t][OutlierType.TEMPORARY_CHANGE]
        )
        assert decayish / total >= 0.6
