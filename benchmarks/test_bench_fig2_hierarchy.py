"""Experiment ``fig2`` — reproduce Figure 2: the five production levels.

Fig. 2 is the structural diagram of the hierarchy.  The executable
version walks a simulated plant and prints, per level, exactly the data
inventory the figure assigns to it (phases inside jobs, setup + CAQ per
job, environment series per line, jobs-over-time per line, cross-machine
production panel), plus how many outlier candidates the level's detector
finds there.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    HierarchicalDetectionPipeline,
    ProductionLevel,
    contract_for,
)

L = ProductionLevel


def _inventory(dataset) -> dict:
    machine = next(dataset.iter_machines())
    job = machine.jobs[0]
    phase = job.phases[3]  # printing
    env = dataset.environment_series("line-0")
    jobs_mat, __ = dataset.jobs_over_time("line-0")
    panel, machines = dataset.production_panel()
    return {
        L.PHASE: (
            f"{len(job.phases)} phases/job, {len(phase.series)} channels, "
            f"{len(next(iter(phase.series.values())))} samples @ step 1.0, "
            f"plus a {len(phase.events)}-symbol event sequence"
        ),
        L.JOB: (
            f"{len(dataset.setup_keys)} setup parameters + "
            f"{len(dataset.caq_keys)} CAQ measurements per job "
            f"({len(machine.jobs)} jobs on {machine.machine_id})"
        ),
        L.ENVIRONMENT: (
            f"{len(env)} channels ({', '.join(sorted(env))}), "
            f"{len(next(iter(env.values())))} samples @ step "
            f"{next(iter(env.values())).step} (coarser resolution)"
        ),
        L.PRODUCTION_LINE: (
            f"jobs-over-time matrix {jobs_mat.shape} per line "
            "(time-ordered high-dimensional rows)"
        ),
        L.PRODUCTION: (
            f"KPI panel {panel.shape}: one row per machine "
            f"({len(machines)} machines)"
        ),
    }


def test_bench_fig2_hierarchy(benchmark, emit, bench_plant):
    pipeline = benchmark.pedantic(
        lambda: HierarchicalDetectionPipeline(bench_plant), rounds=1, iterations=1
    )
    inventory = _inventory(bench_plant)

    lines = ["Fig. 2 reproduction — the five production levels", ""]
    for level in L:
        contract = contract_for(level)
        candidates = pipeline.context.find_candidates(level)
        lines.append(f"[{int(level)}] {level.label.upper()} level")
        lines.append(f"    paper: {contract.description}")
        lines.append(f"    data:  {inventory[level]}")
        lines.append(
            f"    outlier granularity: {contract.outlier_granularity.value} | "
            f"detector: {pipeline.context.selector.choose(level).name} | "
            f"candidates found: {len(candidates)}"
        )
        lines.append("")
    emit("fig2_hierarchy", "\n".join(lines))

    # structural assertions: the dataset exposes every level's data shape
    assert inventory[L.PHASE].startswith("5 phases/job")
    env = bench_plant.environment_series("line-0")
    phase = next(bench_plant.iter_jobs()).phases[0]
    phase_step = next(iter(phase.series.values())).step
    env_step = next(iter(env.values())).step
    assert env_step > phase_step, "environment must be coarser than phases"
    # every level must be able to enumerate candidates without error
    for level in L:
        pipeline.context.find_candidates(level)
    # the phase level (highest resolution) yields the most candidates
    counts = {lvl: len(pipeline.context.find_candidates(lvl)) for lvl in L}
    assert counts[L.PHASE] >= max(counts.values()) - 1e-9
