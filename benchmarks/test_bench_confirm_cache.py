"""Experiment ``confirm-cache`` — memoized confirmation/support indexing.

The Algorithm-1 hot path (`PlantHierarchyContext.confirm` / `support`)
used to re-derive everything per call.  This benchmark demonstrates the
memoization layer on a large synthetic plant under the repeated-query
workload the monitors produce (N successive ``run()`` calls over one
scored context):

* **recomputation ratio** — confirm calls per actual recomputation
  (counter-verified: the cached context must recompute ≥ 5× less often
  than it is called);
* **wall-clock** — total time of the N runs, cache on vs. cache off;
* **integrity** — cached reports are byte-identical to a cold-context run.
"""

from __future__ import annotations

import time

from repro.core import HierarchicalDetectionPipeline, PipelineConfig
from repro.io import reports_to_json
from repro.plant import FaultConfig, PlantConfig, simulate_plant

N_RUNS = 6


def _large_plant():
    config = PlantConfig(
        seed=2019,
        n_lines=3,
        machines_per_line=4,
        jobs_per_machine=12,
        faults=FaultConfig(
            process_fault_rate=0.15,
            sensor_fault_rate=0.15,
            setup_anomaly_rate=0.06,
        ),
    )
    return simulate_plant(config)


def _format(cold_s, warm_s, cache, identical) -> str:
    confirm, support = cache["confirm"], cache["support"]
    ctime = cache["candidate_time"]
    ratio = confirm["calls"] / max(1, confirm["misses"])
    return "\n".join(
        [
            "Confirmation/support memoization — large plant, "
            f"{N_RUNS} successive run() calls",
            "",
            f"{'cache':>8s} {'total s':>9s} {'s/run':>9s}",
            f"{'off':>8s} {cold_s:9.3f} {cold_s / N_RUNS:9.3f}",
            f"{'on':>8s} {warm_s:9.3f} {warm_s / N_RUNS:9.3f}",
            "",
            f"wall-clock speedup: {cold_s / warm_s:.1f}x",
            f"confirm: {confirm['calls']} calls, "
            f"{confirm['misses']} recomputations "
            f"({ratio:.1f}x fewer recomputations than calls)",
            f"support: {support['calls']} calls, "
            f"{support['misses']} recomputations",
            f"candidate-time: {ctime['calls']} calls, "
            f"{ctime['hits']} hits",
            f"cached reports byte-identical to cold run: {identical}",
        ]
    )


def test_bench_confirm_cache(benchmark, emit):
    dataset = _large_plant()
    cold = HierarchicalDetectionPipeline(
        dataset, config=PipelineConfig(enable_cache=False)
    )
    warm = HierarchicalDetectionPipeline(
        dataset, config=PipelineConfig(enable_cache=True)
    )

    t0 = time.perf_counter()
    for __ in range(N_RUNS):
        cold_reports = cold.run()
    cold_s = time.perf_counter() - t0

    def warm_runs():
        for __ in range(N_RUNS):
            reports = warm.run()
        return reports

    t0 = time.perf_counter()
    warm_reports = benchmark.pedantic(warm_runs, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    cache = warm.stats()["cache"]
    identical = reports_to_json(warm_reports) == reports_to_json(cold_reports)
    emit("confirm_cache", _format(cold_s, warm_s, cache, identical))

    # 1. counter-verified: >= 5x fewer confirm recomputations than calls
    assert cache["confirm"]["calls"] >= 5 * cache["confirm"]["misses"]
    assert cache["support"]["calls"] >= 5 * cache["support"]["misses"]
    # 2. measurable wall-clock win on the repeated-query workload
    assert warm_s < cold_s * 0.8
    # 3. the cache never changes results
    assert identical
