"""Ablation ``abl-fusion`` — cross-level fusion strategies.

Design choice under test: how the per-level unified scores of a candidate
are combined into one number (the paper's "combine outlier information
from the different levels in a valuable manner").  Strategies: max, mean,
weighted mean (level-dependent weights), and Fisher's method.  Measured:
average precision of the fused ranking for process faults, against the
flat no-hierarchy baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core import FUSION_STRATEGIES, HierarchicalDetectionPipeline
from repro.eval import average_precision, precision_at_k
from repro.plant import FaultKind


def _evaluate(dataset):
    pipeline = HierarchicalDetectionPipeline(dataset)
    process = {
        (f.machine_id, f.job_index, f.phase_name)
        for f in dataset.faults_of_kind(FaultKind.PROCESS)
    }

    def metrics_for(reports, score_fn):
        labels = np.array(
            [
                (r.candidate.machine_id, r.candidate.job_index,
                 r.candidate.phase_name) in process
                for r in reports
            ]
        )
        scores = np.array([score_fn(r) for r in reports])
        return (
            average_precision(labels, scores),
            precision_at_k(labels, scores, 5),
        )

    rows = {}
    for strategy in sorted(FUSION_STRATEGIES):
        reports = pipeline.run(fusion_strategy=strategy)
        rows[strategy] = metrics_for(reports, lambda r: r.fused_score)
    flat = pipeline.flat_baseline()
    rows["flat"] = metrics_for(flat, lambda r: r.outlierness)
    return rows


def _format(rows) -> str:
    lines = [
        "Fusion ablation — ranking process faults by fused cross-level score",
        "",
        f"{'strategy':10s} {'AP':>7s} {'P@5':>6s}",
    ]
    for name, (ap, p5) in rows.items():
        lines.append(f"{name:10s} {ap:7.3f} {p5:6.2f}")
    return "\n".join(lines)


def test_bench_ablation_fusion(benchmark, emit, bench_plant):
    rows = benchmark.pedantic(lambda: _evaluate(bench_plant), rounds=1, iterations=1)
    emit("ablation_fusion", _format(rows))

    # evidence-accumulating strategies must beat plain averaging: a mean
    # over levels dilutes a candidate confirmed at only some levels
    best_sharp = max(rows["max"][0], rows["fisher"][0])
    assert best_sharp >= rows["mean"][0]
    # and the best fusion must at least match the flat baseline
    best = max(ap for name, (ap, __) in rows.items() if name != "flat")
    assert best >= rows["flat"][0] - 0.02
