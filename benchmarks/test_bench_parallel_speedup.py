"""Perf benchmark — the parallel level-DAG engine vs the serial baseline.

Section 5 of the paper names *calculation speed* as a core challenge of
hierarchical detection.  This benchmark runs the full pipeline over a
larger plant under every executor and reports wall time, the engine's
compute/wall speedup estimate, and — the part that must never regress —
byte-identical report JSON across executors.

The wall-clock speedup assertion is gated on available cores: a
single-core container can prove correctness but not parallelism.  The
threshold defaults to 1.5x and can be relaxed for noisy CI boxes via
``REPRO_BENCH_SPEEDUP_MIN``.
"""

from __future__ import annotations

import os
import time

from repro.core import HierarchicalDetectionPipeline
from repro.core.pipeline import PipelineConfig
from repro.io import reports_to_json
from repro.plant import FaultConfig, PlantConfig, simulate_plant


def _speedup_plant():
    # bigger than bench_plant: per-task compute must dominate pool overhead
    return simulate_plant(
        PlantConfig(
            seed=2019,
            n_lines=3,
            machines_per_line=4,
            jobs_per_machine=12,
            faults=FaultConfig(
                process_fault_rate=0.15,
                sensor_fault_rate=0.15,
                setup_anomaly_rate=0.06,
            ),
        )
    )


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _run(dataset, executor: str, workers):
    config = PipelineConfig(executor=executor, max_workers=workers)
    started = time.perf_counter()
    pipeline = HierarchicalDetectionPipeline(dataset, config=config)
    reports = pipeline.run()
    wall = time.perf_counter() - started
    doc = reports_to_json(reports, health=pipeline.health, stats=pipeline.stats())
    return wall, doc, pipeline.context.engine_stats()


def _format(rows, cores: int, identical: bool) -> str:
    lines = [
        "Parallel level-DAG engine — wall time per executor "
        f"({cores} core(s) available)",
        "",
        f"{'executor':10s} {'workers':>7s} {'tasks':>5s} {'wall_s':>8s} "
        f"{'speedup':>8s} {'vs_serial':>9s}",
    ]
    serial_wall = rows["serial"][0]
    for name, (wall, engine) in rows.items():
        ratio = serial_wall / wall if wall > 0 else 0.0
        lines.append(
            f"{name:10s} {engine.workers:7d} {engine.n_tasks:5d} "
            f"{wall:8.3f} {engine.speedup:8.2f} {ratio:9.2f}"
        )
    lines.append("")
    process_engine = rows["process"][1]
    lines.append(
        "process transport: "
        f"bytes_pickled={process_engine.bytes_pickled} "
        f"bytes_shared={process_engine.bytes_shared} "
        f"encode_s={process_engine.transport_encode_seconds:.4f} "
        f"decode_s={process_engine.transport_decode_seconds:.4f}"
    )
    lines.append(f"reports byte-identical across executors: {identical}")
    return "\n".join(lines)


def test_bench_parallel_speedup(emit):
    cores = _available_cores()
    dataset = _speedup_plant()
    rows = {}
    docs = {}
    for executor in ("serial", "thread", "process"):
        wall, doc, engine = _run(dataset, executor, None)
        rows[executor] = (wall, engine)
        docs[executor] = doc

    # one speedup definition everywhere: stamp the serial leg's measured
    # in-worker task time onto the parallel legs, so `engine.speedup` in
    # this table and in the run manifest divide the same baseline
    serial_baseline = rows["serial"][1].compute_seconds
    for executor in ("thread", "process"):
        rows[executor][1].serial_baseline_seconds = serial_baseline

    identical = docs["serial"] == docs["thread"] == docs["process"]
    emit("parallel_speedup", _format(rows, cores, identical))

    # the determinism contract holds on every machine, parallel or not
    assert identical, "executors disagreed on the serialized reports"

    # wall-clock speedup is only provable with real parallel hardware;
    # the gate is on the *process* executor specifically — with batched
    # kernels and the shared-memory transport it must beat serial on its
    # own, not ride on the thread pool's result
    if cores >= 2:
        threshold = float(os.environ.get("REPRO_BENCH_SPEEDUP_MIN", "1.5"))
        serial_wall = rows["serial"][0]
        process_wall = rows["process"][0]
        achieved = serial_wall / process_wall if process_wall > 0 else 0.0
        assert achieved >= threshold, (
            f"process executor achieved {achieved:.2f}x over serial "
            f"on {cores} cores; expected >= {threshold}x"
        )
