"""Experiment ``observability-overhead`` — telemetry must stay under 5%.

Telemetry is default-on, so its cost is part of every run.  This
benchmark times the full construct-and-run pipeline workload (scoring
all five levels, Algorithm 1, report ranking) with telemetry enabled
vs. disabled, interleaved and min-of-N so scheduler noise cancels, and
asserts the enabled/disabled wall-clock ratio stays below 1.05.
"""

from __future__ import annotations

import time

import pytest

from repro.core import HierarchicalDetectionPipeline, PipelineConfig

pytestmark = pytest.mark.obs

#: Initial interleaved rounds; extended adaptively (up to MAX_ROUNDS) when
#: scheduler noise pushes the min-of-N ratio over budget.  Min-of-N
#: converges to the true cost with more rounds, so extending only rescues
#: noise — an implementation that genuinely exceeds the budget still fails.
N_ROUNDS = 5
MAX_ROUNDS = 21


def _timed_run(dataset, enable_telemetry: bool) -> float:
    config = PipelineConfig(enable_telemetry=enable_telemetry)
    t0 = time.perf_counter()
    pipeline = HierarchicalDetectionPipeline(dataset, config=config)
    pipeline.run()
    return time.perf_counter() - t0


def _format(on_s, off_s, n_rounds, n_spans, n_metrics) -> str:
    ratio = on_s / off_s
    return "\n".join(
        [
            "Telemetry overhead — full construct+run workload, "
            f"min of {n_rounds} interleaved rounds",
            "",
            f"{'telemetry':>10s} {'best s':>9s}",
            f"{'off':>10s} {off_s:9.3f}",
            f"{'on':>10s} {on_s:9.3f}",
            "",
            f"overhead: {100 * (ratio - 1):+.2f}% (budget < 5%)",
            f"per run while enabled: {n_spans} spans, {n_metrics} metric families",
        ]
    )


def test_bench_observability_overhead(bench_plant, benchmark, emit):
    # interleave on/off rounds so drift hits both arms equally; extend
    # past N_ROUNDS only while noise keeps the min-of-N ratio over budget
    on_times, off_times = [], []
    while len(on_times) < MAX_ROUNDS:
        off_times.append(_timed_run(bench_plant, enable_telemetry=False))
        on_times.append(_timed_run(bench_plant, enable_telemetry=True))
        if len(on_times) >= N_ROUNDS and min(on_times) < min(off_times) * 1.05:
            break

    def best_enabled_run():
        return _timed_run(bench_plant, enable_telemetry=True)

    benchmark.pedantic(best_enabled_run, rounds=1, iterations=1)

    on_s, off_s = min(on_times), min(off_times)

    telemetry_pipeline = HierarchicalDetectionPipeline(bench_plant)
    telemetry_pipeline.run()
    n_spans = len(telemetry_pipeline.telemetry.tracer.spans)
    n_metrics = len(telemetry_pipeline.telemetry.metrics.collect())

    emit(
        "observability_overhead",
        _format(on_s, off_s, len(on_times), n_spans, n_metrics),
    )

    assert n_spans > 0 and n_metrics > 0  # default-on really records
    # the acceptance budget: less than 5% wall-clock overhead
    assert on_s < off_s * 1.05, (
        f"telemetry overhead {100 * (on_s / off_s - 1):.2f}% exceeds 5%"
    )
