"""Experiment ``fig3`` — reproduce Figure 3: research-field article counts.

Web of Science is proprietary; the synthetic corpus reproduces the *query
workload*: eight field terms, each filtered by the topic "time series" and
then restricted to the category "automation control systems".  Verified
shape: anomaly detection dominates, fault detection is second and has the
largest automation-control share, deviant discovery is negligible.
"""

from __future__ import annotations

import numpy as np

from repro.corpus import generate_corpus, run_fig3_queries

N_RECORDS = 60_000


def _run():
    index = generate_corpus(n_records=N_RECORDS, seed=2019)
    return run_fig3_queries(index)


def _format(rows) -> str:
    lines = [
        f"Fig. 3 reproduction — {N_RECORDS} synthetic records, 16 queries",
        "",
        f"{'field':26s} {'term+time series':>18s} {'+ACS category':>15s}",
    ]
    for row in rows:
        bar = "#" * max(1, row.time_series_count // 40)
        lines.append(
            f"{row.field:26s} {row.time_series_count:18d} {row.acs_count:15d}  {bar}"
        )
    return "\n".join(lines)


def test_bench_fig3_corpus(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig3_corpus", _format(rows))

    counts = {r.field: r.time_series_count for r in rows}
    acs = {r.field: r.acs_count for r in rows}

    # bar ordering claims (the figure's shape)
    ordered = sorted(counts, key=counts.get, reverse=True)
    assert ordered[0] == "anomaly detection"
    assert ordered[1] == "fault detection"
    assert counts["deviant discovery"] < 0.05 * counts["anomaly detection"]
    assert counts["novelty detection"] < counts["event detection"]
    # the ACS restriction shrinks every field and favours fault detection
    for field in counts:
        assert acs[field] <= counts[field]
    shares = {
        f: acs[f] / counts[f] for f in counts if counts[f] >= 100
    }
    assert max(shares, key=shares.get) == "fault detection"
    # magnitudes in the same regime as the paper's bar chart (y up to ~2000)
    assert 1000 <= counts["anomaly detection"] <= 2500
