"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table / figure /
algorithm) and both *prints* the regenerated rows (visible with ``-s``)
and writes them under ``benchmarks/out/`` so EXPERIMENTS.md can record
paper-vs-measured without re-running.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.plant import FaultConfig, PlantConfig, simulate_plant

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def emit(report_dir):
    """emit(name, text): print a table and persist it for EXPERIMENTS.md."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def bench_plant():
    """The shared alg1/fig2 plant run: big enough for stable statistics."""
    config = PlantConfig(
        seed=2019,
        n_lines=2,
        machines_per_line=3,
        jobs_per_machine=12,
        faults=FaultConfig(
            process_fault_rate=0.15,
            sensor_fault_rate=0.15,
            setup_anomaly_rate=0.06,
        ),
    )
    return simulate_plant(config)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2019)
