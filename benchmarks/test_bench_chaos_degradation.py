"""Experiment ``chaos_degradation`` — detection quality vs infrastructure faults.

The resilience layer promises graceful degradation: as sensors drop out
and traces corrupt, the pipeline must keep producing ranked reports (never
crash), quarantine exactly what is broken, and lose ranking quality
gradually rather than catastrophically.  This bench sweeps the chaos
injection rate and records the Algorithm-1 quality metrics next to the
RunHealth counters at each rate.
"""

from __future__ import annotations

import pytest

from repro.eval import evaluate_alg1
from repro.plant import (
    ChaosConfig,
    FaultConfig,
    PlantConfig,
    inject_chaos,
    simulate_plant,
)

RATES = (0.0, 0.1, 0.2, 0.3)
CHAOS_SEED = 2019


def _plant():
    return simulate_plant(
        PlantConfig(
            seed=2019, n_lines=2, machines_per_line=2, jobs_per_machine=8,
            faults=FaultConfig(
                process_fault_rate=0.15, sensor_fault_rate=0.15,
                setup_anomaly_rate=0.06,
            ),
        )
    )


def _sweep(dataset):
    from repro.core import HierarchicalDetectionPipeline

    rows = []
    for rate in RATES:
        chaotic, events = inject_chaos(
            dataset,
            ChaosConfig(
                seed=CHAOS_SEED,
                sensor_dropout_rate=rate,
                nan_burst_rate=rate / 2,
                stuck_rate=rate / 4,
            ),
        )
        pipeline = HierarchicalDetectionPipeline(chaotic)
        metrics = evaluate_alg1(chaotic, pipeline)
        counters = pipeline.health.counters()
        rows.append(
            {
                "rate": rate,
                "n_events": len(events),
                "hier_p5": metrics.hier_p5,
                "hier_ap": metrics.hier_ap,
                "support_process": metrics.support_process,
                "n_candidates": metrics.n_candidates,
                **counters,
            }
        )
    return rows


def _format(rows) -> str:
    lines = [
        "Chaos degradation — Algorithm-1 quality vs injected infrastructure faults",
        f"(chaos seed {CHAOS_SEED}; dropout=r, nan-burst=r/2, stuck=r/4)",
        "",
        f"{'rate':>5s} {'events':>7s} {'P@5':>6s} {'AP':>6s} {'supp(proc)':>10s} "
        f"{'cands':>6s} {'quar':>5s} {'dead':>5s} {'fallb':>6s}",
    ]
    for row in rows:
        lines.append(
            f"{row['rate']:5.2f} {row['n_events']:7d} {row['hier_p5']:6.2f} "
            f"{row['hier_ap']:6.3f} {row['support_process']:10.2f} "
            f"{row['n_candidates']:6d} {row['health_quarantines']:5d} "
            f"{row['health_dead_channels']:5d} {row['health_fallbacks']:6d}"
        )
    return "\n".join(lines)


@pytest.mark.chaos
def test_bench_chaos_degradation(benchmark, emit):
    dataset = _plant()
    rows = benchmark.pedantic(lambda: _sweep(dataset), rounds=1, iterations=1)
    emit("chaos_degradation", _format(rows))

    by_rate = {row["rate"]: row for row in rows}
    # fault-free run: pristine health, and the quality floor of the sweep
    assert by_rate[0.0]["health_quarantines"] == 0
    assert by_rate[0.0]["health_dead_channels"] == 0
    assert by_rate[0.0]["hier_ap"] > 0.0
    # every chaotic run still completed and produced ranked reports
    for row in rows:
        assert row["n_candidates"] > 0
    # injected infrastructure faults are visible in RunHealth, and more
    # chaos means more quarantines (weakly monotone over the sweep)
    quarantines = [row["health_quarantines"] for row in rows]
    assert quarantines == sorted(quarantines)
    assert by_rate[0.3]["health_quarantines"] > 0
    assert by_rate[0.3]["n_events"] > by_rate[0.1]["n_events"]
    # graceful, not catastrophic: even at 30% chaos the pipeline keeps a
    # usable ranking signal
    assert by_rate[0.3]["hier_ap"] > 0.0
