"""Extension bench — streaming detection throughput and latency.

Section 5: "another challenge for outlier detection is related to the
calculation speed" ([4] resorts to MapReduce for distance-based outliers).
The streaming subsystem answers with constant-memory per-sample detectors;
this bench measures (a) raw throughput of the streaming monitor over a
redundant sensor pair and (b) detection latency (samples from fault onset
to first flagged sample) against the batch pipeline's whole-phase pass.
"""

from __future__ import annotations

import numpy as np

from repro.core import CorrespondenceGraph
from repro.streaming import StreamingSensorMonitor
from repro.synthetic import ar_process

N_SAMPLES = 4000
FAULT_AT = 3000


def _build_streams(seed=11):
    rng = np.random.default_rng(seed)
    process = ar_process(N_SAMPLES, rng, (0.5,), 0.5).values.copy()
    process[FAULT_AT] += 8.0
    a = process + rng.normal(0, 0.1, N_SAMPLES)
    b = process + rng.normal(0, 0.1, N_SAMPLES)
    samples = []
    for t in range(N_SAMPLES):
        samples.append(("a", float(t), float(a[t])))
        samples.append(("b", float(t), float(b[t])))
    return samples


def _run_monitor(samples):
    graph = CorrespondenceGraph()
    graph.add_correspondence("a", "b", relation="redundant")
    monitor = StreamingSensorMonitor(graph, threshold=6.0)
    monitor.observe_block(samples)
    return monitor


def test_bench_streaming_throughput(benchmark, emit):
    samples = _build_streams()
    monitor = benchmark(lambda: _run_monitor(samples))

    events = monitor.reconsider_support()
    fault_events = [e for e in events if abs(e.time - FAULT_AT) <= 3]
    latency = (
        min(e.time for e in fault_events) - FAULT_AT if fault_events else None
    )
    per_sample_us = (
        benchmark.stats.stats.mean / len(samples) * 1e6
        if benchmark.stats is not None
        else float("nan")
    )
    lines = [
        "Streaming extension — throughput and detection latency",
        "",
        f"samples per run: {len(samples)} (2 channels x {N_SAMPLES})",
        f"mean time per sample: {per_sample_us:.1f} us "
        f"(~{1e6 / per_sample_us:,.0f} samples/s)" if per_sample_us == per_sample_us else "",
        f"events flagged: {len(events)}",
        f"detection latency at the injected fault: {latency} sample(s)",
        f"fault support online: "
        f"{fault_events[0].support:.2f}" if fault_events else "fault missed",
    ]
    emit("streaming", "\n".join(str(l) for l in lines))

    assert fault_events, "injected fault not flagged by the stream monitor"
    assert latency is not None and latency <= 1
    assert all(e.support == 1.0 for e in fault_events)
