"""Experiment ``tab1`` — reproduce Table 1: categorization of techniques.

The paper's Table 1 assigns each of 21 techniques a family and checkmarks
for the granularities it handles (PTS / SSQ / TSS).  Here every checkmark
is *verified operationally*: the implementation of the technique must beat
the random baseline (AUC > 0.6) on a workload of that granularity.

Workloads per column:
* PTS — the Gaussian-cloud point dataset;
* SSQ — anomalous label sequences in a collection, or (whichever the
  technique handles better) injected subsequences localized inside a
  numeric series;
* TSS — anomalous whole series inside a collection.

Supervised (SA) techniques are additionally given what the paper grants
them — "labeled training data is available" — via a labeled fit on half
the data.

The extracted paper text preserves each row's checkmark *count* but not
the column alignment; the reconstruction (documented in EXPERIMENTS.md)
must therefore reproduce the counts exactly and earn each mark.
"""

from __future__ import annotations

import numpy as np

from repro.detectors import TABLE1_ROWS, Family
from repro.eval import roc_auc
from repro.synthetic import (
    inject_subsequence,
    make_point_dataset,
    make_sequence_dataset,
    make_series_collection,
    seasonal_signal,
)

AUC_FLOOR = 0.6

#: checkmark counts per row, read off the paper's Table 1
PAPER_CHECK_COUNTS = [1, 1, 2, 3, 1, 2, 3, 1, 3, 3, 2, 2, 2, 2, 3, 1, 1, 1, 2, 2, 1]


def _ssq_series_workload(seed=77):
    rng = np.random.default_rng(seed)
    series = seasonal_signal(600, rng, period=25.0, amplitude=2.0, noise_sigma=0.2)
    labels = np.zeros(600, dtype=bool)
    for onset in (180, 420):
        series, inj = inject_subsequence(series, onset, 30, rng, style="noise", delta=4.0)
        labels[inj.index : inj.end] = True
    return series, labels


def _evaluate_all():
    rng = np.random.default_rng(2019)
    pts = make_point_dataset(rng)
    ssq = make_sequence_dataset(rng)
    tss_coll, tss_labels = make_series_collection(rng)
    loc_series, loc_labels = _ssq_series_workload()

    half = len(pts.labels) // 2
    results = []
    for entry in TABLE1_ROWS:
        pts_ok, ssq_ok, tss_ok = entry.capabilities()
        row = {"entry": entry, "pts": None, "ssq": None, "tss": None}

        if pts_ok:
            det = entry.factory()
            if entry.family is Family.SUPERVISED:
                det.fit_labeled(pts.X[:half], pts.labels[:half])
                row["pts"] = roc_auc(pts.labels[half:], det.score(pts.X[half:]))
            else:
                row["pts"] = roc_auc(pts.labels, det.fit_score(pts.X))

        if ssq_ok:
            aucs = []
            try:
                det = entry.factory()
                if entry.family is Family.SUPERVISED and hasattr(det, "fit_labeled"):
                    seqs = list(ssq.sequences)
                    cut = len(seqs) // 2
                    det.fit_labeled(seqs[:cut], ssq.labels[:cut])
                    aucs.append(roc_auc(ssq.labels[cut:], det.score(seqs[cut:])))
                else:
                    aucs.append(
                        roc_auc(ssq.labels, det.fit_score(list(ssq.sequences)))
                    )
            except Exception:
                pass
            if not aucs or max(aucs) <= AUC_FLOOR:
                try:
                    det = entry.factory()
                    scores = det.fit_score_series(loc_series, width=25)
                    aucs.append(roc_auc(loc_labels, scores))
                except Exception:
                    pass
            row["ssq"] = max(aucs) if aucs else 0.0

        if tss_ok:
            det = entry.factory()
            row["tss"] = roc_auc(tss_labels, det.fit_score(list(tss_coll)))

        results.append(row)
    return results


def _format(results) -> str:
    lines = [
        "Table 1 reproduction — categorization of literature on outliers",
        "each claimed checkmark is verified operationally (AUC > 0.6 vs random)",
        "",
        f"{'technique':36s} {'family':6s} {'PTS':>8s} {'SSQ':>8s} {'TSS':>8s} {'paper #':>8s}",
    ]
    for row, count in zip(results, PAPER_CHECK_COUNTS):
        entry = row["entry"]
        cells = []
        for col in ("pts", "ssq", "tss"):
            v = row[col]
            if v is None:
                cells.append(f"{'—':^8s}")
            else:
                mark = "✓" if v > AUC_FLOOR else "✗"
                cells.append(f"{mark} {v:4.2f}  ")
        lines.append(
            f"{entry.technique:36s} {entry.family.value:6s} "
            f"{' '.join(cells)} {count:>7d}"
        )
    lines.append("")
    lines.append("— : blank cell in Table 1 (shape refused by the implementation)")
    return "\n".join(lines)


def test_bench_table1_categorization(benchmark, emit):
    results = benchmark.pedantic(_evaluate_all, rounds=1, iterations=1)
    emit("table1_categorization", _format(results))

    # checkmark counts must match the paper exactly
    got_counts = [
        sum(1 for col in ("pts", "ssq", "tss") if row[col] is not None)
        for row in results
    ]
    assert got_counts == PAPER_CHECK_COUNTS

    # every claimed checkmark is earned operationally
    failures = []
    for row in results:
        for col in ("pts", "ssq", "tss"):
            v = row[col]
            if v is not None and v <= AUC_FLOOR:
                failures.append(f"{row['entry'].name}:{col}={v:.2f}")
    assert not failures, f"unearned checkmarks: {failures}"
