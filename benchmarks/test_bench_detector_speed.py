"""Extension bench — detector calculation speed.

"Another challenge for outlier detection is related to the calculation
speed" (Section 5).  This bench times every PTS-capable Table-1 detector
on one fixed point workload (fit + score, 630 items) so the cost of each
technique is visible next to its quality in the ``tab1`` bench.
pytest-benchmark prints the comparative table.

A second table (``detector_batch``) times every ``supports_batch``
registry detector on the same stack of series through both the scalar
per-series loop and the vectorized ``fit_score_series_batch`` kernel,
so the batch win per family is a tracked perf artifact (parsed into the
``repro.bench/2`` JSON by ``to_json.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.detectors import TABLE1_ROWS
from repro.detectors.registry import BASELINE_ROWS
from repro.synthetic import make_point_dataset
from repro.timeseries import TimeSeries

_PTS_ROWS = [e for e in TABLE1_ROWS if e.capabilities()[0]]
_DATA = make_point_dataset(np.random.default_rng(99), n_inliers=600, n_outliers=30)

_BATCHED_ROWS = [
    e for e in TABLE1_ROWS + BASELINE_ROWS if e.cls.supports_batch
]


@pytest.mark.parametrize("entry", _PTS_ROWS, ids=lambda e: e.name)
def test_bench_detector_speed(benchmark, entry):
    scores = benchmark(lambda: entry.factory().fit_score(_DATA.X))
    assert scores.shape == (len(_DATA.labels),)
    assert np.isfinite(scores).all()


def _series_stack(n_series: int = 16, n: int = 256):
    rng = np.random.default_rng(2019)
    return [
        TimeSeries(values=rng.normal(size=n).cumsum(), start=0.0, step=1.0)
        for __ in range(n_series)
    ]


def _best_of(fn, reps: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for __ in range(reps):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_batched_vs_scalar(emit):
    series = _series_stack()
    lines = [
        f"Batched vs scalar detector kernels — {len(series)} series × "
        f"{len(series[0].values)} samples (best of 3)",
        "",
        f"{'detector':20s} {'family':16s} {'scalar_ms':>9s} {'batch_ms':>9s} "
        f"{'speedup':>8s}",
    ]
    max_delta = 0.0
    for entry in _BATCHED_ROWS:
        scalar_s, looped = _best_of(
            lambda e=entry: [e.factory().fit_score_series(s) for s in series]
        )
        batch_s, batched = _best_of(
            lambda e=entry: e.factory().fit_score_series_batch(series)
        )
        for got, want in zip(batched, looped):
            max_delta = max(max_delta, float(np.abs(got - want).max()))
        ratio = scalar_s / batch_s if batch_s > 0 else 0.0
        lines.append(
            f"{entry.name:20s} {entry.family.name.lower():16s} "
            f"{scalar_s * 1e3:9.2f} {batch_s * 1e3:9.2f} {ratio:8.2f}"
        )
    lines.append("")
    lines.append(f"max |batched - scalar| across detectors: {max_delta:.2e}")
    emit("detector_batch", "\n".join(lines))
    # the kernels must agree with the scalar path inside the documented
    # 1e-9 numerical-equality contract, on the bench workload too
    assert max_delta <= 1e-9
