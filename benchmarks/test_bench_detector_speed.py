"""Extension bench — detector calculation speed.

"Another challenge for outlier detection is related to the calculation
speed" (Section 5).  This bench times every PTS-capable Table-1 detector
on one fixed point workload (fit + score, 630 items) so the cost of each
technique is visible next to its quality in the ``tab1`` bench.
pytest-benchmark prints the comparative table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import TABLE1_ROWS
from repro.synthetic import make_point_dataset

_PTS_ROWS = [e for e in TABLE1_ROWS if e.capabilities()[0]]
_DATA = make_point_dataset(np.random.default_rng(99), n_inliers=600, n_outliers=30)


@pytest.mark.parametrize("entry", _PTS_ROWS, ids=lambda e: e.name)
def test_bench_detector_speed(benchmark, entry):
    scores = benchmark(lambda: entry.factory().fit_score(_DATA.X))
    assert scores.shape == (len(_DATA.labels),)
    assert np.isfinite(scores).all()
