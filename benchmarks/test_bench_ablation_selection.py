"""Ablation ``abl-choose`` — the ChooseAlgorithm policy.

Design choice under test: Algorithm 1 begins with
``ChooseAlgorithm(startLevel)`` — a *per-level* detector choice "with
respect to the resolution best fitting to a production layer".  The
ablation compares the default resolution-aware policy against degenerate
policies that force one detector everywhere.

Measured on the shared plant: phase-level fault coverage (how many
injected signal faults produce a candidate) and ranking AP for process
faults.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AlgorithmSelector,
    HierarchicalDetectionPipeline,
    ProductionLevel,
)
from repro.eval import average_precision
from repro.plant import FaultKind

L = ProductionLevel

UNIFORM_POLICIES = ("zscore", "mad", "knn")


def _selector_for(name: str | None) -> AlgorithmSelector:
    if name is None:
        return AlgorithmSelector()
    return AlgorithmSelector({level: (name,) for level in L})


def _evaluate(dataset):
    signal_faults = [
        f for f in dataset.faults
        if f.kind in (FaultKind.PROCESS, FaultKind.SENSOR)
    ]
    process = {
        (f.machine_id, f.job_index, f.phase_name)
        for f in dataset.faults_of_kind(FaultKind.PROCESS)
    }
    rows = {}
    for policy in (None,) + UNIFORM_POLICIES:
        pipeline = HierarchicalDetectionPipeline(
            dataset, selector=_selector_for(policy)
        )
        reports = pipeline.run()
        found = {
            (r.candidate.machine_id, r.candidate.job_index,
             r.candidate.phase_name)
            for r in reports
        }
        coverage = sum(
            (f.machine_id, f.job_index, f.phase_name) in found
            for f in signal_faults
        ) / max(1, len(signal_faults))
        labels = np.array(
            [
                (r.candidate.machine_id, r.candidate.job_index,
                 r.candidate.phase_name) in process
                for r in reports
            ]
        )
        ranks = np.arange(len(reports), 0, -1, dtype=float)
        ap = average_precision(labels, ranks) if len(reports) else 0.0
        rows["per-level (default)" if policy is None else f"all-{policy}"] = (
            coverage, ap, len(reports)
        )
    return rows


def _format(rows) -> str:
    lines = [
        "ChooseAlgorithm ablation — per-level policy vs one detector everywhere",
        "",
        f"{'policy':22s} {'fault coverage':>15s} {'AP':>7s} {'candidates':>11s}",
    ]
    for name, (coverage, ap, n) in rows.items():
        lines.append(f"{name:22s} {coverage:15.2f} {ap:7.3f} {n:11d}")
    return "\n".join(lines)


def test_bench_ablation_selection(benchmark, emit, bench_plant):
    rows = benchmark.pedantic(lambda: _evaluate(bench_plant), rounds=1, iterations=1)
    emit("ablation_selection", _format(rows))

    default_cov, default_ap, __ = rows["per-level (default)"]
    # the resolution-aware policy must not be dominated by any uniform policy
    for name, (coverage, ap, __n) in rows.items():
        if name == "per-level (default)":
            continue
        assert default_cov >= coverage - 0.05 or default_ap >= ap - 0.05, (
            f"default policy dominated by {name}"
        )
    # and it must achieve solid absolute coverage of injected faults
    assert default_cov >= 0.5
