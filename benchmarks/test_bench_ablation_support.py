"""Ablation ``abl-support`` — the support term of the Algorithm-1 triple.

Design choice under test: Algorithm 1 normalizes the support counter by
the number of corresponding sensors (``support /= |corresponding|``) and
uses it to demote unsupported outliers.  Variants compared:

* ``off``        — ranking ignores support entirely;
* ``raw-count``  — un-normalized supporter count;
* ``fraction``   — the paper's normalized support (default).

Measured: how well the ranking pushes *sensor* (measurement-error)
candidates below *process* (real) candidates on the redundant pair, as the
AUC of "is a process fault" over the candidate ranking, restricted to
candidates with redundancy, plus the support-value separation itself.
"""

from __future__ import annotations

import numpy as np

from repro.core import HierarchicalDetectionPipeline
from repro.eval import roc_auc
from repro.plant import FaultKind


def _evaluate(dataset):
    pipeline = HierarchicalDetectionPipeline(dataset)
    reports = [r for r in pipeline.run() if r.n_corresponding > 0]

    process = {
        (f.machine_id, f.job_index, f.phase_name)
        for f in dataset.faults_of_kind(FaultKind.PROCESS)
    }
    sensor = {
        (f.machine_id, f.job_index, f.phase_name)
        for f in dataset.faults_of_kind(FaultKind.SENSOR)
    }
    keyed = [
        (r, (r.candidate.machine_id, r.candidate.job_index, r.candidate.phase_name))
        for r in reports
    ]
    contested = [(r, k) for r, k in keyed if k in process or k in sensor]
    labels = np.array([k in process for __, k in contested])

    def rank_auc(score_fn):
        scores = np.array([score_fn(r) for r, __ in contested])
        return roc_auc(labels, scores)

    variants = {
        "off": lambda r: (r.global_score - 1) / 4.0 + r.outlierness,
        "raw-count": lambda r: (r.global_score - 1) / 4.0 + r.outlierness
        + r.support * r.n_corresponding,
        "fraction": lambda r: (r.global_score - 1) / 4.0 + r.outlierness
        + r.support,
    }
    aucs = {name: rank_auc(fn) for name, fn in variants.items()}

    proc_support = [r.support for r, k in contested if k in process]
    sens_support = [r.support for r, k in contested if k in sensor]
    return {
        "aucs": aucs,
        "n_contested": len(contested),
        "support_process": float(np.mean(proc_support)) if proc_support else np.nan,
        "support_sensor": float(np.mean(sens_support)) if sens_support else np.nan,
    }


def _format(m) -> str:
    lines = [
        "Support ablation — separating process faults from measurement errors",
        f"(over {m['n_contested']} redundancy-covered fault candidates)",
        "",
        f"{'ranking variant':16s} {'process-vs-sensor AUC':>22s}",
    ]
    for name, auc in m["aucs"].items():
        lines.append(f"{name:16s} {auc:22.2f}")
    lines.append("")
    lines.append(
        f"mean support: process={m['support_process']:.2f} "
        f"sensor={m['support_sensor']:.2f}"
    )
    return "\n".join(lines)


def test_bench_ablation_support(benchmark, emit, bench_plant):
    metrics = benchmark.pedantic(
        lambda: _evaluate(bench_plant), rounds=1, iterations=1
    )
    emit("ablation_support", _format(metrics))

    aucs = metrics["aucs"]
    # including support (either form) must beat ignoring it
    assert aucs["fraction"] > aucs["off"]
    assert aucs["raw-count"] >= aucs["off"]
    # and the separation driving it must be real
    assert metrics["support_process"] > metrics["support_sensor"] + 0.3
