"""Perf benchmark — incremental ingest latency vs plant size.

The incremental tentpole's contract: ingesting one new job re-runs only
that job's task-DAG closure (its machine's phase task plus the cheap
vector levels), so per-job refresh latency is governed by *one machine's*
payload and stays flat as the plant grows — while a cold full recompute
grows with the number of machines.  Each plant size also cross-checks the
headline correctness guarantee: the incrementally refreshed pipeline
serializes byte-identically to a cold rebuild on the full dataset.

The flatness assertion tolerates a 1.5x drift by default (the global job
table and the assembly pass do grow slowly with plant size); relax via
``REPRO_BENCH_INCREMENTAL_RATIO_MAX`` on noisy CI boxes.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import HierarchicalDetectionPipeline
from repro.io import reports_to_json
from repro.plant import FaultConfig, PlantConfig, simulate_plant

#: (n_lines, machines_per_line) — jobs_per_machine stays constant so the
#: per-machine payload (what one refresh re-scores) is size-invariant.
SIZES = ((1, 2), (2, 3), (3, 4))
JOBS_PER_MACHINE = 6
TAIL = 2  # held-out jobs per machine, replayed as arrivals


def _plant(n_lines: int, machines_per_line: int):
    return simulate_plant(
        PlantConfig(
            seed=2019,
            n_lines=n_lines,
            machines_per_line=machines_per_line,
            jobs_per_machine=JOBS_PER_MACHINE,
            faults=FaultConfig(
                process_fault_rate=0.15,
                sensor_fault_rate=0.15,
                setup_anomaly_rate=0.06,
            ),
        )
    )


def _bench_size(n_lines: int, machines_per_line: int) -> dict:
    dataset = _plant(n_lines, machines_per_line)
    started = time.perf_counter()
    cold = HierarchicalDetectionPipeline(dataset)
    cold_s = time.perf_counter() - started

    base, arrivals = dataset.split_tail(TAIL)
    warm = HierarchicalDetectionPipeline(base)
    latencies = []
    for machine_id, job in arrivals:
        t0 = time.perf_counter()
        warm.ingest_job(machine_id, job)
        latencies.append(time.perf_counter() - t0)

    identical = reports_to_json(warm.run(), health=warm.health) == reports_to_json(
        cold.run(), health=cold.health
    )
    lat = np.asarray(latencies, dtype=float)
    return {
        "lines": n_lines,
        "machines": n_lines * machines_per_line,
        "ingests": len(arrivals),
        "p50_ms": float(np.percentile(lat, 50)) * 1e3,
        "p99_ms": float(np.percentile(lat, 99)) * 1e3,
        "cold_s": cold_s,
        "identical": identical,
    }


def _format(rows, ratio: float, identical: bool) -> str:
    lines = [
        "Incremental ingest — per-job refresh latency vs plant size "
        f"(jobs/machine fixed at {JOBS_PER_MACHINE}, tail {TAIL})",
        "",
        f"{'lines':>5s} {'machines':>8s} {'ingests':>7s} "
        f"{'p50_ms':>8s} {'p99_ms':>8s} {'cold_s':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row['lines']:5d} {row['machines']:8d} {row['ingests']:7d} "
            f"{row['p50_ms']:8.1f} {row['p99_ms']:8.1f} {row['cold_s']:8.3f}"
        )
    lines.append("")
    lines.append(f"reports byte-identical (incremental vs cold): {identical}")
    lines.append(f"p50 ratio largest/smallest plant: {ratio:.2f}")
    return "\n".join(lines)


def test_bench_incremental(emit):
    rows = [_bench_size(*size) for size in SIZES]
    ratio = rows[-1]["p50_ms"] / rows[0]["p50_ms"]
    identical = all(row["identical"] for row in rows)
    emit("incremental", _format(rows, ratio, identical))

    # correctness first: the optimization must be behaviourally invisible
    assert identical, "incremental refresh diverged from a cold rebuild"

    # full recompute cost grows with the plant (4x the machines here)...
    assert rows[-1]["cold_s"] > rows[0]["cold_s"] * 1.5, (
        f"cold rebuild did not grow with plant size "
        f"({rows[0]['cold_s']:.3f}s -> {rows[-1]['cold_s']:.3f}s)"
    )
    # ...while per-job refresh latency stays flat
    ratio_max = float(os.environ.get("REPRO_BENCH_INCREMENTAL_RATIO_MAX", "1.5"))
    assert ratio <= ratio_max, (
        f"per-job refresh p50 grew {ratio:.2f}x from the smallest to the "
        f"largest plant; expected <= {ratio_max}x (latency must track one "
        "machine's payload, not plant size)"
    )
