"""Generate docs/API.md from the package's public surface.

Walks every ``repro`` subpackage, lists the names it exports in
``__all__``, and records each object's one-line summary (the first line of
its docstring).  Run after changing any public API:

    python tools/gen_api_docs.py

``--check`` regenerates in memory and exits 1 if docs/API.md on disk has
drifted (CI runs this in the lint job).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pathlib
import sys

#: Hand-written notes appended after the generated tables so they survive
#: regeneration.  Keep these short and about *cross-cutting* API behaviour
#: that no single docstring owns.
NOTES = """\
## Notes

### Confirmation/support caching (`repro.core.pipeline`)

`PlantHierarchyContext` precomputes per-level indexes once (machine→line
map, per-line job interval index, sorted per-channel trace index,
phase-candidate indexes) and memoizes `confirm(candidate, level)`,
`support(candidate)`, and `find_candidates(level)` on the candidate's
canonical `OutlierCandidate.key` — a hashable
`(level, machine, job, phase, sensor, index)` tuple that deliberately
excludes score/provenance fields.  Repeated `run()` calls and the
up/down walks of `calc_global_score` therefore never recompute a
confirmation.  The cache is a pure performance layer: reports are
byte-identical to a cache-disabled context
(`PipelineConfig(enable_cache=False)`).  Hit/miss/call counters are
exposed through `HierarchicalDetectionPipeline.stats()` (equivalently
`PlantHierarchyContext.stats()`, a `PipelineStats` snapshot);
`reset_stats()` zeroes them and `invalidate_caches()` drops memoized
results while keeping the indexes.  After a job ingest
(`PlantDataset.ingest_job` → `refresh()`), eviction is *scoped* instead:
only entries whose keys fall in the dirty subgraph are dropped, so
ENVIRONMENT-level confirmations and unaffected support values survive
the refresh (see DESIGN.md §10).

### Unification-method defaults

`find_hierarchical_outliers` (and `HierarchicalDetectionPipeline.run`,
which forwards its `unify_method` argument) default to `"rank"` —
distribution-free, the safe choice when mixing detectors across a level —
while the lower-level `repro.core.scores.unify` helper defaults to
`"gaussian"`.  Pass the method explicitly whenever the distinction
matters.

### Windowing semantics (`repro.core.support.window_bounds`)

All time-window → sample-range conversions (the support loop and the
environment confirmation) share `window_bounds`: the lower bound floors,
the upper bound ceils, and degenerate traces (`step <= 0` or non-finite)
select the whole trace instead of raising `ZeroDivisionError`.

### Resilience layer (`repro.core.resilience`, `repro.plant.chaos`)

Every detector invocation inside the pipeline runs through a
`DetectorSandbox` (`SandboxPolicy`: wall-clock `time_budget`,
`max_attempts` with deterministic backoff, optional `hard_timeout`
thread isolation).  Transient `DetectorError`s are retried; permanent
ones (`NotFittedError`, `ShapeUnsupportedError`, `DataQualityError`,
`DetectorTimeoutError`) fail over immediately to the next
`ChooseAlgorithm` candidate via `fallback_chain`, ending at a robust
z/MAD baseline that cannot fail, so `run()` always completes.  Before
scoring, a data-quality gate (`QualityPolicy`, `assess_series`,
`repair_series`) repairs benign defects (short NaN gaps, ±inf) and
quarantines fatally corrupt traces.  Channels that are dead everywhere
leave the Algorithm-1 support divisor: `SupportCalculator` renormalizes
over *surviving* redundancy-group members, so support for real process
faults stays comparable to a fault-free run instead of being dragged
down by sensors that cannot vote (the `abl-support` ablation compares
against disabling support entirely; quarantine only shrinks the
divisor, never the numerator).  Everything that degraded is recorded in
`RunHealth` (fallbacks, quarantines, warnings, per-level notes),
surfaced through `HierarchicalDetectionPipeline.stats()` /
`.health`, `AlertManager.ingest_health`, the `run_health` block of
`reports_to_json`, and the CLI.  `repro.plant.chaos` provides the
seeded fault-injection harness (`inject_chaos` + `ChaosConfig`:
dropout, NaN bursts, stuck-at, truncation) and the always-raising /
flaky / hanging detector wrappers used by the `-m chaos` test suite and
`benchmarks/test_bench_chaos_degradation.py`.

### Telemetry (`repro.obs`)

Default-on, stdlib-only observability: every pipeline run records
nestable spans (one per hierarchy level, detector invocation,
confirmation/support computation) in a `Tracer`, counts into a
`MetricsRegistry` (counters/gauges/fixed-bucket histograms), and emits
structured JSON logs under the `repro.*` logger hierarchy.  One
`Telemetry` object bundles the three; `Telemetry(enabled=False)` (or
`PipelineConfig(enable_telemetry=False)`) swaps in shared no-op
instruments so the disabled path is effectively free, and the enabled
path is budgeted at <5% wall-clock overhead
(`benchmarks/test_bench_observability_overhead.py`).  Span ids are
sequential and the clock injectable (`TickClock`), so traces serialize
byte-identically across seeded reruns — the chaos rerun guarantee
extends to telemetry.  Exporters live in `repro.obs.export`
(`to_prometheus` text exposition, `metrics_to_json` / `trace_to_json`,
`render_span_tree`, `build_run_manifest`); the CLI surfaces them via
`repro detect --metrics-out/--trace-out/--log-level` and
`repro trace <trace.json>`.  See `docs/OBSERVABILITY.md` for the span
taxonomy, metric catalog, and manifest schema.
"""

SUBPACKAGES = [
    "repro.timeseries",
    "repro.synthetic",
    "repro.detectors",
    "repro.plant",
    "repro.corpus",
    "repro.eval",
    "repro.obs",
    "repro.core",
    "repro.monitor",
    "repro.streaming",
    "repro.io",
    "repro.sanitize",
    "repro.cli",
]


def one_liner(obj) -> str:
    if isinstance(obj, (tuple, frozenset, dict, str, int, float)):
        return ""  # builtin-type docstrings are noise for constants
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0].strip() if doc else ""


def kind_of(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj):
        return "function"
    if isinstance(obj, (tuple, frozenset, dict)):
        return "constant"
    return "object"


def render() -> str:
    lines = [
        "# API reference",
        "",
        "Generated by `python tools/gen_api_docs.py` — the public surface of",
        "every subpackage (`__all__`) with one-line summaries.",
        "",
    ]
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        summary = one_liner(module)
        lines.append(f"## `{name}`")
        if summary:
            lines.append(f"\n{summary}\n")
        exported = getattr(module, "__all__", [])
        rows = []
        for export in exported:
            obj = getattr(module, export, None)
            if obj is None:
                continue
            if inspect.ismodule(obj):
                continue
            rows.append((export, kind_of(obj), one_liner(obj)))
        if rows:
            lines.append("| name | kind | summary |")
            lines.append("|---|---|---|")
            for export, kind, doc in rows:
                doc = doc.replace("|", "\\|")
                lines.append(f"| `{export}` | {kind} | {doc} |")
        lines.append("")
    lines.append(NOTES)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if docs/API.md is stale instead of rewriting it",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    rendered = render()
    if args.check:
        current = out.read_text() if out.exists() else ""
        if current != rendered:
            print(
                f"{out} is stale — regenerate with `python tools/gen_api_docs.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{out} is up to date")
        return 0
    out.parent.mkdir(exist_ok=True)
    out.write_text(rendered)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
