"""repro-lint: AST-based contract checkers for the repro codebase.

The paper's contributions are *structural contracts* — 21 Table-1
techniques with declared PTS/SSQ/TSS applicability, a five-level
hierarchy, and Algorithm 1's ``(global score, outlierness, support)``
triple — and PRs 1-3 added matching *runtime* contracts (the error
taxonomy, seeded chaos, metric/span discipline).  This package makes
those contracts machine-checked on every commit instead of
reviewer-enforced:

* **REG0xx** — detector-registry completeness: every concrete detector
  class is registered and its capabilities match the machine-readable
  Table-1 manifest (``tools/lint/table1_manifest.json``);
* **EXC0xx** — exception-taxonomy discipline: no bare/broad ``except``
  outside the sandbox, only ``repro.detectors.errors`` types across the
  detector API boundary;
* **DET0xx** — determinism discipline: all randomness flows through
  seeded ``numpy.random.Generator`` objects, all clocks through the
  injection points;
* **DET1xx** — worker purity and ordering determinism: a project-wide
  dataflow pass (``tools.lint.dataflow``) computes the set of functions
  reachable from the parallel-engine task entry points and bans
  module-global mutation and unpicklable/late-binding captures there,
  plus package-wide hash-order-sensitive set iteration and module-level
  RNG state;
* **TEL0xx** — telemetry discipline: every metric name appears in the
  central catalog (``repro.obs.catalog``), spans are only opened as
  context managers;
* **HYG0xx** — generic hygiene: mutable default arguments, float-literal
  equality on data paths.

Run as ``python -m tools.lint src/`` or ``repro lint src/``.  Findings
can be suppressed per line with ``# repro-lint: disable=RULE`` (see
``docs/STATIC_ANALYSIS.md``).  The suite is pure stdlib ``ast`` — it
never imports the code under analysis.
"""

from __future__ import annotations

from .core import (
    Finding,
    LintConfig,
    ParsedFile,
    Rule,
    apply_baseline,
    baseline_document,
    collect_files,
    format_findings,
    load_baseline,
    run_lint,
    sarif_document,
)
from .rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "ParsedFile",
    "Rule",
    "apply_baseline",
    "baseline_document",
    "collect_files",
    "format_findings",
    "load_baseline",
    "main",
    "run_lint",
    "rules_by_id",
    "sarif_document",
]


def main(argv: "list[str] | None" = None) -> int:
    """Console entry point shared by ``python -m tools.lint`` and ``repro lint``."""
    from .__main__ import run

    return run(argv)
