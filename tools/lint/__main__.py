"""``python -m tools.lint [paths...]`` — run the repro-lint suite.

Exit codes: 0 clean, 1 findings, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import json

from .core import (
    LintConfig,
    apply_baseline,
    baseline_document,
    collect_files,
    format_findings,
    load_baseline,
    run_lint,
)
from .rules import make_rules

#: Baseline picked up automatically when present in the working directory.
DEFAULT_BASELINE = Path("lint-baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based contract checkers for the repro codebase "
        "(registry completeness, exception taxonomy, determinism, "
        "telemetry, hygiene).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="suppression baseline to subtract from the findings "
        "(default: ./lint-baseline.json when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current findings as a suppression baseline and exit 0",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="Table-1 capability manifest "
        "(default: tools/lint/table1_manifest.json)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule-id prefixes to run (e.g. DET,TEL001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and exit",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = make_rules()
    if args.list_rules:
        for rule in rules:
            for rule_id in rule.rule_ids:
                print(f"{rule_id}  ({rule.name})")
        return 0
    if args.select:
        prefixes = tuple(
            token.strip().upper() for token in args.select.split(",") if token.strip()
        )
        rules = [
            rule
            for rule in rules
            if any(rid.startswith(prefixes) for rid in rule.rule_ids)
        ]
        if not rules:
            print(f"repro-lint: --select {args.select!r} matches no rules",
                  file=sys.stderr)
            return 2
    paths: List[Path] = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "repro-lint: no such path(s): "
            + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2
    config = LintConfig()
    if args.manifest:
        config.manifest_path = Path(args.manifest)
    findings = run_lint(paths, rules, config)
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            json.dumps(baseline_document(findings), indent=2) + "\n",
            encoding="utf-8",
        )
        print(
            f"repro-lint: wrote baseline with {len(findings)} suppression "
            f"budget(s) to {args.write_baseline}"
        )
        return 0
    suppressed = 0
    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        elif DEFAULT_BASELINE.is_file():
            baseline_path = DEFAULT_BASELINE
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(f"repro-lint: no such baseline: {baseline_path}", file=sys.stderr)
            return 2
        try:
            findings, suppressed = apply_baseline(
                findings, load_baseline(baseline_path)
            )
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2
    print(
        format_findings(
            findings,
            args.format,
            checked=len(collect_files(paths)),
            suppressed=suppressed,
        )
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(run())
