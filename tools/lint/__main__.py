"""``python -m tools.lint [paths...]`` — run the repro-lint suite.

Exit codes: 0 clean, 1 findings, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .core import LintConfig, collect_files, format_findings, run_lint
from .rules import make_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based contract checkers for the repro codebase "
        "(registry completeness, exception taxonomy, determinism, "
        "telemetry, hygiene).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="Table-1 capability manifest "
        "(default: tools/lint/table1_manifest.json)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule-id prefixes to run (e.g. DET,TEL001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and exit",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rules = make_rules()
    if args.list_rules:
        for rule in rules:
            for rule_id in rule.rule_ids:
                print(f"{rule_id}  ({rule.name})")
        return 0
    if args.select:
        prefixes = tuple(
            token.strip().upper() for token in args.select.split(",") if token.strip()
        )
        rules = [
            rule
            for rule in rules
            if any(rid.startswith(prefixes) for rid in rule.rule_ids)
        ]
        if not rules:
            print(f"repro-lint: --select {args.select!r} matches no rules",
                  file=sys.stderr)
            return 2
    paths: List[Path] = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "repro-lint: no such path(s): "
            + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2
    config = LintConfig()
    if args.manifest:
        config.manifest_path = Path(args.manifest)
    findings = run_lint(paths, rules, config)
    print(format_findings(findings, args.format, checked=len(collect_files(paths))))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(run())
