"""Shared findings/reporting core of the repro-lint suite.

One :class:`ParsedFile` per source file (text + AST + suppression table),
one :class:`Finding` per violation, one :class:`Rule` base class that
per-file checkers subclass and one :class:`ProjectRule` for whole-tree
checkers (the registry/manifest cross-check needs every detector module
at once).  ``run_lint`` wires them together and ``format_findings``
renders text or JSON.

Suppressions
------------
* ``# repro-lint: disable=RULE1,RULE2`` on the finding's line silences
  those rules (``disable=all`` silences everything on the line);
* ``# repro-lint: disable-file=RULE1,RULE2`` anywhere in a file silences
  the rules for the whole file.

Exit codes: 0 clean, 1 findings (including unparseable files, reported
as rule ``LNT000``), 2 usage errors.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintConfig",
    "ParsedFile",
    "ProjectRule",
    "Rule",
    "apply_baseline",
    "baseline_document",
    "collect_files",
    "format_findings",
    "load_baseline",
    "run_lint",
    "sarif_document",
]

#: Schema tag of the suppression-baseline file format.
BASELINE_SCHEMA = "repro.lint-baseline/1"

#: Rule id of the pseudo-finding emitted for files that fail to parse.
PARSE_ERROR_RULE = "LNT000"

_SUPPRESS_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        return text


def _parse_rule_list(raw: str) -> Set[str]:
    return {token.strip().upper() for token in raw.split(",") if token.strip()}


@dataclass
class ParsedFile:
    """A source file with its AST and suppression table."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "ParsedFile":
        text = path.read_text(encoding="utf-8")
        display = _display_path(path, root)
        tree = ast.parse(text, filename=str(path))
        line_suppressions: Dict[int, Set[str]] = {}
        file_suppressions: Set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_LINE_RE.search(line)
            if match:
                line_suppressions.setdefault(lineno, set()).update(
                    _parse_rule_list(match.group(1))
                )
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                file_suppressions.update(_parse_rule_list(match.group(1)))
        return cls(
            path=path,
            display_path=display,
            text=text,
            tree=tree,
            line_suppressions=line_suppressions,
            file_suppressions=file_suppressions,
        )

    def suppressed(self, rule: str, line: int) -> bool:
        rule = rule.upper()
        if rule in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        active = self.line_suppressions.get(line, ())
        return rule in active or "ALL" in active

    def matches(self, *suffixes: str) -> bool:
        """True when the file's posix path ends with any given suffix."""
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)


@dataclass
class LintConfig:
    """Knobs threaded through a lint run (defaults fit the real tree)."""

    #: Table-1 manifest consumed by the registry checker; defaults to the
    #: one shipped next to this package.
    manifest_path: Path = field(
        default_factory=lambda: Path(__file__).resolve().parent / "table1_manifest.json"
    )
    #: Repo-root used to shorten displayed paths; autodetected when None.
    root: Optional[Path] = None


class Rule:
    """A per-file checker: visit one AST, yield findings.

    Subclasses set ``rule_ids`` (every id they can emit — used by
    ``--list-rules`` and the docs drift test) and implement
    :meth:`check`.  Path-scoped exemptions live in the rules themselves
    as posix-path suffixes, so fixture trees that mirror the repo layout
    exercise them.
    """

    rule_ids: Tuple[str, ...] = ()
    name: str = ""

    def check(self, src: ParsedFile, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(
        self,
        rule: str,
        src: ParsedFile,
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        return Finding(
            rule=rule,
            path=src.display_path,
            line=getattr(node, "lineno", 1),
            message=message,
            hint=hint,
        )


class ProjectRule(Rule):
    """A whole-tree checker: sees every parsed file at once."""

    def check(self, src: ParsedFile, config: LintConfig) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, files: Sequence[ParsedFile], config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError


def _display_path(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    for base in filter(None, (root, Path.cwd())):
        try:
            return resolved.relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def run_lint(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run ``rules`` over every python file under ``paths``.

    Returns findings sorted by (path, line, rule); suppressed findings
    are dropped.  Unparseable files surface as ``LNT000`` findings
    rather than aborting the run.
    """
    config = config or LintConfig()
    findings: List[Finding] = []
    parsed: List[ParsedFile] = []
    for path in collect_files(paths):
        try:
            parsed.append(ParsedFile.parse(path, config.root))
        except (SyntaxError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=_display_path(path, config.root),
                    line=getattr(exc, "lineno", None) or 1,
                    message=f"cannot parse file: {exc.__class__.__name__}: {exc}",
                )
            )
    for src in parsed:
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            for finding in rule.check(src, config):
                if not src.suppressed(finding.rule, finding.line):
                    findings.append(finding)
    by_display = {src.display_path: src for src in parsed}
    for rule in rules:
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(parsed, config):
                src = by_display.get(finding.path)
                if src is None or not src.suppressed(finding.rule, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def format_findings(
    findings: Iterable[Finding],
    fmt: str = "text",
    checked: int = 0,
    tool: str = "repro-lint",
    suppressed: int = 0,
) -> str:
    """Render findings as human text, a JSON document, or SARIF 2.1.0."""
    findings = list(findings)
    if fmt == "json":
        return json.dumps(
            {
                "tool": tool,
                "checked_files": checked,
                "findings": [f.as_dict() for f in findings],
                "summary": _summary(findings),
            },
            indent=2,
        )
    if fmt == "sarif":
        return json.dumps(sarif_document(findings, tool=tool), indent=2)
    lines = [f.render() for f in findings]
    counts = _summary(findings)
    note = f" ({suppressed} baselined)" if suppressed else ""
    if findings:
        per_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        lines.append(
            f"{tool}: {len(findings)} finding(s) in {checked} file(s){note}: {per_rule}"
        )
    else:
        lines.append(f"{tool}: clean ({checked} file(s) checked){note}")
    return "\n".join(lines)


def sarif_document(
    findings: Sequence[Finding], tool: str = "repro-lint"
) -> Dict[str, object]:
    """Minimal SARIF 2.1.0 log: one run, one result per finding.

    The rule table is derived from the findings themselves (first
    message per rule id), which keeps this renderer independent of the
    rule registry — the runtime sanitizer mirrors the same shape.
    """
    rule_ids: List[str] = []
    first_message: Dict[str, str] = {}
    for finding in findings:
        if finding.rule not in first_message:
            rule_ids.append(finding.rule)
            first_message[finding.rule] = finding.message
    results = []
    for finding in findings:
        text = finding.message
        if finding.hint:
            text += f" [fix: {finding.hint}]"
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": text},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {"startLine": finding.line},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "rules": [
                            {
                                "id": rid,
                                "shortDescription": {"text": first_message[rid]},
                            }
                            for rid in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def load_baseline(path: Path) -> Dict[Tuple[str, str], int]:
    """Read a suppression baseline: ``(rule, path) -> allowed count``.

    Raises ``ValueError`` on a wrong schema tag or malformed entries so a
    stale or hand-mangled baseline fails loudly instead of silently
    suppressing everything.
    """
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a {BASELINE_SCHEMA} baseline "
            f"(schema={doc.get('schema')!r})"
        )
    out: Dict[Tuple[str, str], int] = {}
    for entry in doc.get("suppressions", []):
        rule, fpath, count = entry["rule"], entry["path"], int(entry["count"])
        if count < 1:
            raise ValueError(f"{path}: non-positive count for {rule} @ {fpath}")
        out[(str(rule), str(fpath))] = count
    return out


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[Tuple[str, str], int]
) -> Tuple[List[Finding], int]:
    """Drop up to ``count`` findings per baselined ``(rule, path)``.

    Findings arrive sorted by (path, line, rule), so the *lowest* lines
    are the ones suppressed — moving a baselined violation around a file
    does not grow the budget.  Returns (kept, suppressed_count).
    """
    budget = dict(baseline)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = (finding.rule, finding.path)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def baseline_document(findings: Sequence[Finding]) -> Dict[str, object]:
    """Render current findings as a baseline suppression document."""
    counts: Dict[Tuple[str, str], int] = {}
    for finding in findings:
        key = (finding.rule, finding.path)
        counts[key] = counts.get(key, 0) + 1
    return {
        "schema": BASELINE_SCHEMA,
        "suppressions": [
            {"rule": rule, "path": path, "count": count}
            for (rule, path), count in sorted(counts.items())
        ],
    }


def _summary(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts
