"""DET0xx — determinism discipline.

Every experiment, the chaos suite's rerun guarantee, and the
byte-identical trace serialization all rest on one invariant: *no hidden
entropy sources*.  Randomness flows through seeded
``numpy.random.Generator`` objects passed (or constructed from an
explicit seed) at injection points; clocks flow through the injectable
callables of ``repro.obs`` / ``repro.core.resilience``.

* **DET001** module-level ``np.random.<fn>(...)`` calls (global-state
  RNG: ``np.random.seed``, ``np.random.normal``, ...) — only
  ``default_rng`` / ``Generator`` / ``SeedSequence`` construction is
  allowed;
* **DET002** stdlib ``random`` usage (import or call);
* **DET003** wall-clock reads or sleeps (``time.time``,
  ``time.monotonic``, ``time.perf_counter``, ``time.sleep``,
  ``datetime.now`` / ``utcnow`` / ``today``) outside the clock injection
  points;
* **DET004** ``np.random.default_rng()`` *without a seed argument* —
  an unseeded generator is hidden entropy with a reassuring name;
* **DET005** direct ``ThreadPoolExecutor`` / ``ProcessPoolExecutor``
  construction outside ``repro.core.parallel`` — ad-hoc pools bypass the
  execution engine's deterministic scheduling, worker sizing, and
  result-merge ordering (one pool construction site keeps the
  byte-identical-across-executors guarantee auditable);
* **DET006** direct ``.jobs`` mutation (``x.jobs.append(...)``,
  ``x.jobs = ...``, ``x.jobs[i] = ...``) outside the plant-construction
  modules — job arrivals must flow through
  ``PlantDataset.ingest_job``, the one API that keeps the navigation
  index and the incremental pipeline's dirty tracking coherent; a job
  appended behind its back is scored stale (or never) on refresh.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..core import Finding, LintConfig, ParsedFile, Rule

__all__ = ["DeterminismRule"]

#: Modules allowed to touch real clocks: the tracer/telemetry defaults,
#: the sandbox's timeout machinery, the chaos harness's hanging
#: detector (whose whole point is to block), the snapshot store
#: (wall-clock mtime age of on-disk checkpoint files), the sampling
#: profiler (observation-only; its measurements never enter reports),
#: and the shared-memory transport (encode/decode overhead timing —
#: observability-only, never part of a report).
_CLOCK_INJECTION_POINTS = (
    "repro/obs/trace.py",
    "repro/obs/__init__.py",
    "repro/obs/perf.py",
    "repro/core/resilience.py",
    "repro/core/parallel.py",
    "repro/core/checkpoint.py",
    "repro/core/shm.py",
    "repro/plant/chaos.py",
)

#: The one module allowed to construct executor pools (DET005).
_POOL_CONSTRUCTION_POINTS = ("repro/core/parallel.py",)

#: Modules allowed to mutate ``.jobs`` directly (DET006): the dataset
#: model itself (whose ``ingest_job`` is the sanctioned mutation API),
#: the simulator, and the ``.npz`` loader — all construction-time.
_JOBS_MUTATION_POINTS = (
    "repro/plant/model.py",
    "repro/plant/simulate.py",
    "repro/io.py",
)

#: List methods that mutate in place (DET006 flags them on ``.jobs``).
_MUTATING_LIST_METHODS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
)

#: Executor classes whose direct construction DET005 flags.
_POOL_CLASSES = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})

#: np.random attributes that are constructors, not global-state RNG calls.
_ALLOWED_NP_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)

_WALL_CLOCK_CALLS = {
    "time": frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
         "perf_counter_ns", "sleep", "localtime", "gmtime"}
    ),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}


class DeterminismRule(Rule):
    name = "determinism-discipline"
    rule_ids: Tuple[str, ...] = (
        "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
    )

    def check(self, src: ParsedFile, config: LintConfig) -> Iterator[Finding]:
        clock_ok = src.matches(*_CLOCK_INJECTION_POINTS)
        pool_ok = src.matches(*_POOL_CONSTRUCTION_POINTS)
        jobs_ok = src.matches(*_JOBS_MUTATION_POINTS)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self._finding(
                    "DET002",
                    src,
                    node,
                    "stdlib 'random' import: global-state RNG breaks seeded reruns",
                    hint="take a seeded np.random.Generator parameter instead",
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self._finding(
                            "DET002",
                            src,
                            node,
                            "stdlib 'random' import: global-state RNG breaks "
                            "seeded reruns",
                            hint="take a seeded np.random.Generator parameter instead",
                        )
            elif isinstance(node, ast.Call):
                if not pool_ok:
                    yield from self._check_pool(node, src)
                if not jobs_ok:
                    yield from self._check_jobs_call(node, src)
                yield from self._check_call(node, src, clock_ok)
            elif isinstance(node, (ast.Assign, ast.AugAssign)) and not jobs_ok:
                yield from self._check_jobs_assign(node, src)

    def _check_pool(self, node: ast.Call, src: ParsedFile) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return
        if name in _POOL_CLASSES:
            yield self._finding(
                "DET005",
                src,
                node,
                f"direct {name} construction outside repro.core.parallel",
                hint="route pooled work through "
                "repro.core.parallel.ParallelEngine (executor= in "
                "PipelineConfig), the single audited pool construction site",
            )

    def _check_jobs_call(self, node: ast.Call, src: ParsedFile) -> Iterator[Finding]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_LIST_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "jobs"
        ):
            yield self._jobs_finding(node, src, f".jobs.{func.attr}(...)")

    def _check_jobs_assign(
        self, node: "ast.Assign | ast.AugAssign", src: ParsedFile
    ) -> Iterator[Finding]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr == "jobs":
                yield self._jobs_finding(node, src, ".jobs = ...")
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "jobs"
            ):
                yield self._jobs_finding(node, src, ".jobs[...] = ...")

    def _jobs_finding(self, node: ast.AST, src: ParsedFile, what: str) -> Finding:
        return self._finding(
            "DET006",
            src,
            node,
            f"direct {what} mutation outside the plant-construction modules",
            hint="route job arrivals through PlantDataset.ingest_job so the "
            "navigation index and the incremental pipeline's dirty "
            "tracking stay coherent",
        )

    def _check_call(
        self, node: ast.Call, src: ParsedFile, clock_ok: bool
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        chain = _attribute_chain(func)
        if chain is None:
            return
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if len(chain) == 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            fn = chain[2]
            if fn == "default_rng" and not (node.args or node.keywords):
                yield self._finding(
                    "DET004",
                    src,
                    node,
                    "np.random.default_rng() without a seed is hidden entropy",
                    hint="pass an explicit seed (or thread a Generator parameter)",
                )
            elif fn not in _ALLOWED_NP_RANDOM:
                yield self._finding(
                    "DET001",
                    src,
                    node,
                    f"module-level np.random.{fn}() uses numpy's global RNG state",
                    hint="use a seeded np.random.Generator (rng = "
                    "np.random.default_rng(seed); rng.<fn>(...))",
                )
        # random.<fn>(...)
        elif len(chain) == 2 and chain[0] == "random":
            yield self._finding(
                "DET002",
                src,
                node,
                f"stdlib random.{chain[1]}() is unseeded global-state RNG",
                hint="take a seeded np.random.Generator parameter instead",
            )
        # time.<fn>() / datetime.<fn>() outside the injection points
        elif not clock_ok and len(chain) >= 2:
            owner, fn = chain[-2], chain[-1]
            if fn in _WALL_CLOCK_CALLS.get(owner, ()):
                yield self._finding(
                    "DET003",
                    src,
                    node,
                    f"wall-clock call {owner}.{fn}() outside the clock "
                    "injection points",
                    hint="accept an injectable clock callable (see "
                    "repro.obs.TickClock / DetectorSandbox)",
                )


def _attribute_chain(node: ast.expr) -> "Tuple[str, ...] | None":
    """``np.random.normal`` -> ("np", "random", "normal"); None if not names."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
