"""EXC0xx — exception-taxonomy discipline.

The resilience layer (PR 2) dispatches on the ``repro.detectors.errors``
taxonomy: retry transient :class:`DetectorError`\\ s, fail over on
permanent ones, quarantine bad inputs.  That only works if (a) nothing
swallows exceptions wholesale outside the sandbox boundary and (b) the
detector package raises taxonomy types — a stray ``RuntimeError`` passes
straight through :meth:`BaseDetector._run_hook` and breaks every caller
that catches ``DetectorError``.

* **EXC001** bare ``except:``;
* **EXC002** ``except Exception`` / ``except BaseException`` outside the
  sandbox module (``repro/core/resilience.py``);
* **EXC003** ``raise RuntimeError/Exception/BaseException`` inside
  ``repro/detectors/`` — the public API boundary promises
  ``DetectorError`` subclasses (``ValueError``/``KeyError`` etc. are
  wrapped by ``_run_hook``; ``RuntimeError`` is not).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..core import Finding, LintConfig, ParsedFile, Rule

__all__ = ["ExceptionDisciplineRule"]

#: The sandbox is the one legitimate broad-catch boundary.
_BROAD_EXCEPT_ALLOWED = ("repro/core/resilience.py",)

#: Exception names whose *raise* inside the detector package leaks past
#: the ``_run_hook`` wrapping (it only wraps ValueError / ArithmeticError
#: / IndexError / KeyError into the taxonomy).
_FORBIDDEN_RAISES = frozenset({"RuntimeError", "Exception", "BaseException"})

#: The taxonomy module itself defines (and may construct) anything.
_TAXONOMY_SCOPE = "repro/detectors/"
_TAXONOMY_EXEMPT = ("repro/detectors/errors.py",)


class ExceptionDisciplineRule(Rule):
    name = "exception-discipline"
    rule_ids: Tuple[str, ...] = ("EXC001", "EXC002", "EXC003")

    def check(self, src: ParsedFile, config: LintConfig) -> Iterator[Finding]:
        in_sandbox = src.matches(*_BROAD_EXCEPT_ALLOWED)
        in_detectors = _TAXONOMY_SCOPE in src.path.as_posix() and not src.matches(
            *_TAXONOMY_EXEMPT
        )
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(node, src, in_sandbox)
            elif isinstance(node, ast.Raise) and in_detectors:
                yield from self._check_raise(node, src)

    def _check_handler(
        self, node: ast.ExceptHandler, src: ParsedFile, in_sandbox: bool
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self._finding(
                "EXC001",
                src,
                node,
                "bare 'except:' swallows everything, including KeyboardInterrupt",
                hint="catch the specific DetectorError subclass (or at most Exception)",
            )
            return
        if in_sandbox:
            return
        for name in _exception_names(node.type):
            if name in ("Exception", "BaseException"):
                yield self._finding(
                    "EXC002",
                    src,
                    node,
                    f"broad 'except {name}' outside the DetectorSandbox boundary",
                    hint="catch specific types; broad catches belong to "
                    "repro.core.resilience.DetectorSandbox only",
                )

    def _check_raise(self, node: ast.Raise, src: ParsedFile) -> Iterator[Finding]:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            name = _last_name(exc.func)
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            name = _last_name(exc)
        if name in _FORBIDDEN_RAISES:
            yield self._finding(
                "EXC003",
                src,
                node,
                f"'raise {name}' crosses the detector API boundary untyped "
                "(not wrapped into the repro.detectors.errors taxonomy)",
                hint="raise a DetectorError subclass (NotFittedError, "
                "DataQualityError, ...) instead",
            )


def _exception_names(node: ast.expr) -> Iterator[str]:
    """Names of the exception classes an ``except`` clause catches."""
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _exception_names(element)
    else:
        name = _last_name(node)
        if name is not None:
            yield name


def _last_name(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
