"""REG0xx — detector-registry completeness against the Table-1 manifest.

Table 1 is the paper's central artifact: 21 techniques, each with
declared PTS/SSQ/TSS applicability.  The code's executable form is
``repro.detectors.registry`` (21 Table-1 rows + 8 baselines); the
*review* form is the machine-readable manifest
``tools/lint/table1_manifest.json``.  This checker keeps the three in
lockstep without importing anything:

* **REG001** a concrete detector class (transitively derives from
  ``BaseDetector`` and declares its own ``name``) is not referenced in
  any registry row;
* **REG002** registry rows and manifest entries disagree — an entry is
  missing on either side, or technique/citation/row-kind drifted;
* **REG003** a class's statically-declared ``supports`` capabilities
  contradict the manifest's pts/ssq/tss checkmarks;
* **REG004** a registered class is missing (or hides from static
  analysis) its ``name`` / ``family`` / ``supports`` declaration, its
  family contradicts the manifest, or two classes share a detector name.

The checker activates only when the scanned tree contains a file ending
in ``repro/detectors/registry.py``, so fixture trees can carry a
miniature detectors package plus their own manifest
(``LintConfig.manifest_path``).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import Finding, LintConfig, ParsedFile, ProjectRule

__all__ = ["RegistryCompletenessRule"]

_REGISTRY_SUFFIX = "repro/detectors/registry.py"
_DETECTORS_DIR = "repro/detectors/"
_ROW_CONTAINERS = {"TABLE1_ROWS": "table1", "BASELINE_ROWS": "baseline"}
_SHAPE_TO_FLAG = {"POINTS": "pts", "SUBSEQUENCES": "ssq", "SERIES": "tss"}


@dataclass
class _ClassInfo:
    """Statically-extracted facts about one class in the detectors tree."""

    cls_name: str
    src: ParsedFile
    node: ast.ClassDef
    bases: Tuple[str, ...]
    name_attr: Optional[str] = None
    family_attr: Optional[str] = None
    #: pts/ssq/tss flags, or None when ``supports`` is missing/unreadable.
    capabilities: Optional[Dict[str, bool]] = None
    has_supports: bool = False


@dataclass
class _RegistryRow:
    technique: str
    citation: str
    cls_name: str
    row: str
    lineno: int


@dataclass
class _ManifestEntry:
    detector: str
    cls_name: str
    technique: str
    citation: str
    family: str
    row: str
    flags: Dict[str, bool] = field(default_factory=dict)


class RegistryCompletenessRule(ProjectRule):
    name = "registry-completeness"
    rule_ids: Tuple[str, ...] = ("REG001", "REG002", "REG003", "REG004")

    def check_project(
        self, files: Sequence[ParsedFile], config: LintConfig
    ) -> Iterator[Finding]:
        registry_src = next((f for f in files if f.matches(_REGISTRY_SUFFIX)), None)
        if registry_src is None:
            return
        detector_files = [f for f in files if _DETECTORS_DIR in f.path.as_posix()]
        classes = _collect_classes(detector_files)
        rows, row_problems = _parse_registry(registry_src)
        for message in row_problems:
            yield Finding(
                rule="REG002",
                path=registry_src.display_path,
                line=1,
                message=message,
            )
        try:
            manifest = _load_manifest(config.manifest_path)
        except (OSError, ValueError, KeyError) as exc:
            yield Finding(
                rule="REG002",
                path=registry_src.display_path,
                line=1,
                message=f"cannot load Table-1 manifest "
                f"{config.manifest_path}: {exc.__class__.__name__}: {exc}",
                hint="regenerate tools/lint/table1_manifest.json from the registry",
            )
            return
        yield from self._check_unregistered(classes, rows)
        yield from self._check_rows_vs_manifest(rows, manifest, registry_src)
        yield from self._check_classes_vs_manifest(classes, rows, manifest)
        yield from self._check_duplicate_names(classes, rows)

    # ------------------------------------------------------------------
    def _check_unregistered(
        self, classes: Dict[str, _ClassInfo], rows: List[_RegistryRow]
    ) -> Iterator[Finding]:
        registered = {row.cls_name for row in rows}
        concrete = _concrete_detectors(classes)
        for cls_name in sorted(concrete):
            if cls_name not in registered:
                info = classes[cls_name]
                yield self._finding(
                    "REG001",
                    info.src,
                    info.node,
                    f"detector class {cls_name} (name="
                    f"{info.name_attr!r}) is not registered in "
                    "TABLE1_ROWS/BASELINE_ROWS",
                    hint="add an _entry(...) row (and a manifest entry), or "
                    "register it via register_detector for out-of-tree use",
                )

    def _check_rows_vs_manifest(
        self,
        rows: List[_RegistryRow],
        manifest: Dict[str, _ManifestEntry],
        registry_src: ParsedFile,
    ) -> Iterator[Finding]:
        row_classes = {row.cls_name for row in rows}
        for row in rows:
            entry = manifest.get(row.cls_name)
            if entry is None:
                yield Finding(
                    rule="REG002",
                    path=registry_src.display_path,
                    line=row.lineno,
                    message=f"registered class {row.cls_name} has no entry in "
                    "the Table-1 manifest",
                    hint="add the row to tools/lint/table1_manifest.json",
                )
                continue
            for label, got, want in (
                ("technique", row.technique, entry.technique),
                ("citation", row.citation, entry.citation),
                ("row kind", row.row, entry.row),
            ):
                if got != want:
                    yield Finding(
                        rule="REG002",
                        path=registry_src.display_path,
                        line=row.lineno,
                        message=f"{row.cls_name}: {label} {got!r} in the "
                        f"registry but {want!r} in the manifest",
                    )
        for cls_name in sorted(set(manifest) - row_classes):
            yield Finding(
                rule="REG002",
                path=registry_src.display_path,
                line=1,
                message=f"manifest entry {cls_name} has no registry row",
                hint="register the detector or drop the manifest entry",
            )
        if len(rows) != len(manifest):
            yield Finding(
                rule="REG002",
                path=registry_src.display_path,
                line=1,
                message=f"registry declares {len(rows)} detectors but the "
                f"manifest has {len(manifest)} entries",
            )

    def _check_classes_vs_manifest(
        self,
        classes: Dict[str, _ClassInfo],
        rows: List[_RegistryRow],
        manifest: Dict[str, _ManifestEntry],
    ) -> Iterator[Finding]:
        for row in rows:
            info = classes.get(row.cls_name)
            entry = manifest.get(row.cls_name)
            if info is None or entry is None:
                continue  # REG002 already reported missing pieces
            if info.name_attr is None or info.family_attr is None or not info.has_supports:
                missing = [
                    label
                    for label, present in (
                        ("name", info.name_attr is not None),
                        ("family", info.family_attr is not None),
                        ("supports", info.has_supports),
                    )
                    if not present
                ]
                yield self._finding(
                    "REG004",
                    info.src,
                    info.node,
                    f"registered detector {row.cls_name} does not declare "
                    f"{', '.join(missing)} as class attribute(s)",
                    hint="declare the Table-1 contract statically on the class",
                )
            if info.name_attr is not None and info.name_attr != entry.detector:
                yield self._finding(
                    "REG004",
                    info.src,
                    info.node,
                    f"{row.cls_name}.name is {info.name_attr!r} but the "
                    f"manifest says {entry.detector!r}",
                )
            if info.family_attr is not None and info.family_attr != entry.family:
                yield self._finding(
                    "REG004",
                    info.src,
                    info.node,
                    f"{row.cls_name}.family is Family.{info.family_attr} but "
                    f"the manifest says {entry.family!r}",
                    hint="family values in the manifest use the Family enum "
                    "*member name* resolved to its value via the alias table",
                )
            if info.has_supports and info.capabilities is None:
                yield self._finding(
                    "REG004",
                    info.src,
                    info.node,
                    f"{row.cls_name}.supports cannot be resolved statically",
                    hint="declare supports = frozenset({DataShape...}) or a "
                    "module-level frozenset alias",
                )
            elif info.capabilities is not None:
                for flag in ("pts", "ssq", "tss"):
                    got = info.capabilities[flag]
                    want = entry.flags.get(flag)
                    if want is not None and got != want:
                        yield self._finding(
                            "REG003",
                            info.src,
                            info.node,
                            f"{row.cls_name}: class declares "
                            f"{flag}={got} but the Table-1 manifest says "
                            f"{flag}={want}",
                            hint="fix the supports frozenset or correct the "
                            "manifest row (EXPERIMENTS.md records the "
                            "column inference)",
                        )

    def _check_duplicate_names(
        self, classes: Dict[str, _ClassInfo], rows: List[_RegistryRow]
    ) -> Iterator[Finding]:
        seen: Dict[str, str] = {}
        for row in rows:
            info = classes.get(row.cls_name)
            if info is None or info.name_attr is None:
                continue
            if info.name_attr in seen:
                yield self._finding(
                    "REG004",
                    info.src,
                    info.node,
                    f"detector name {info.name_attr!r} is declared by both "
                    f"{seen[info.name_attr]} and {row.cls_name}",
                )
            else:
                seen[info.name_attr] = row.cls_name


# ----------------------------------------------------------------------
# static extraction helpers
# ----------------------------------------------------------------------
def _collect_classes(files: Sequence[ParsedFile]) -> Dict[str, _ClassInfo]:
    classes: Dict[str, _ClassInfo] = {}
    for src in files:
        module_aliases = _module_frozenset_aliases(src.tree)
        for node in src.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                name
                for name in (_last_name(base) for base in node.bases)
                if name is not None
            )
            info = _ClassInfo(
                cls_name=node.name, src=src, node=node, bases=bases
            )
            for stmt in node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "name" and isinstance(stmt.value, ast.Constant):
                        if isinstance(stmt.value.value, str):
                            info.name_attr = stmt.value.value
                    elif target.id == "family":
                        info.family_attr = _last_name(stmt.value)
                    elif target.id == "supports":
                        info.has_supports = True
                        shapes = _resolve_shapes(stmt.value, module_aliases)
                        if shapes is not None:
                            info.capabilities = {
                                flag: shape in shapes
                                for shape, flag in _SHAPE_TO_FLAG.items()
                            }
            classes[node.name] = info
    return classes


def _concrete_detectors(classes: Dict[str, _ClassInfo]) -> Set[str]:
    """Classes transitively deriving from BaseDetector that declare ``name``."""
    derived: Set[str] = {"BaseDetector"}
    changed = True
    while changed:
        changed = False
        for info in classes.values():
            if info.cls_name not in derived and any(b in derived for b in info.bases):
                derived.add(info.cls_name)
                changed = True
    return {
        name
        for name in derived
        if name != "BaseDetector"
        and name in classes
        and classes[name].name_attr is not None
    }


def _module_frozenset_aliases(tree: ast.Module) -> Dict[str, ast.expr]:
    out: Dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                out[target.id] = node.value
    return out


def _resolve_shapes(
    node: ast.expr, aliases: Dict[str, ast.expr], depth: int = 0
) -> Optional[Set[str]]:
    """``frozenset({DataShape.X, ...})`` (possibly via alias) -> {"X", ...}."""
    if depth > 4:
        return None
    if isinstance(node, ast.Name):
        alias = aliases.get(node.id)
        return None if alias is None else _resolve_shapes(alias, aliases, depth + 1)
    if (
        isinstance(node, ast.Call)
        and _last_name(node.func) == "frozenset"
        and len(node.args) <= 1
        and not node.keywords
    ):
        if not node.args:
            return set()
        return _resolve_shapes(node.args[0], aliases, depth + 1)
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        shapes: Set[str] = set()
        for element in node.elts:
            name = _last_name(element)
            if name not in _SHAPE_TO_FLAG:
                return None
            shapes.add(name)
        return shapes
    return None


def _parse_registry(
    src: ParsedFile,
) -> Tuple[List[_RegistryRow], List[str]]:
    rows: List[_RegistryRow] = []
    problems: List[str] = []
    seen_containers: Set[str] = set()
    for node in src.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name) or target.id not in _ROW_CONTAINERS:
                continue
            seen_containers.add(target.id)
            row_kind = _ROW_CONTAINERS[target.id]
            if not isinstance(value, (ast.Tuple, ast.List)):
                problems.append(
                    f"{target.id} is not a literal tuple of _entry(...) rows"
                )
                continue
            for element in value.elts:
                row = _parse_entry(element, row_kind)
                if row is None:
                    problems.append(
                        f"{target.id} contains a row that is not a statically "
                        f"readable _entry(...) call (line {element.lineno})"
                    )
                else:
                    rows.append(row)
    for container in _ROW_CONTAINERS:
        if container not in seen_containers:
            problems.append(f"registry does not define {container}")
    return rows, problems


def _parse_entry(node: ast.expr, row_kind: str) -> Optional[_RegistryRow]:
    if not (
        isinstance(node, ast.Call)
        and _last_name(node.func) == "_entry"
        and len(node.args) >= 3
    ):
        return None
    technique, citation, cls = node.args[:3]
    if not (
        isinstance(technique, ast.Constant)
        and isinstance(technique.value, str)
        and isinstance(citation, ast.Constant)
        and isinstance(citation.value, str)
    ):
        return None
    cls_name = _last_name(cls)
    if cls_name is None:
        return None
    return _RegistryRow(
        technique=technique.value,
        citation=citation.value,
        cls_name=cls_name,
        row=row_kind,
        lineno=node.lineno,
    )


#: ``Family`` enum member name -> value, mirrored from repro.detectors.base
#: so the checker never imports the code under analysis.  REG004 catches a
#: drifted mirror indirectly (family mismatches on every row).
_FAMILY_VALUES = {
    "DISCRIMINATIVE": "DA",
    "UNSUPERVISED_PARAMETRIC": "UPA",
    "UNSUPERVISED_OLAP": "UOA",
    "SUPERVISED": "SA",
    "NORMAL_PATTERN_DB": "NPD",
    "NEGATIVE_PATTERN_DB": "NMD",
    "OUTLIER_SUBSEQUENCE": "OS",
    "PREDICTIVE": "PM",
    "INFORMATION_THEORETIC": "ITM",
    "BASELINE": "BL",
}


def _load_manifest(path) -> Dict[str, _ManifestEntry]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = doc["detectors"] if isinstance(doc, dict) else doc
    out: Dict[str, _ManifestEntry] = {}
    for raw in rows:
        entry = _ManifestEntry(
            detector=str(raw["detector"]),
            cls_name=str(raw["class"]),
            technique=str(raw["technique"]),
            citation=str(raw["citation"]),
            family=_family_member_name(str(raw["family"])),
            row=str(raw["row"]),
            flags={flag: bool(raw[flag]) for flag in ("pts", "ssq", "tss")},
        )
        out[entry.cls_name] = entry
    return out


def _family_member_name(value: str) -> str:
    """Manifest stores the Family *value* ("DA"); classes use member names."""
    for member, val in _FAMILY_VALUES.items():
        if value in (member, val):
            return member
    return value


def _last_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
