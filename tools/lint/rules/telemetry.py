"""TEL0xx — telemetry discipline.

PR 3 made telemetry default-on; its dashboards, the golden Prometheus
file, and the run manifests all assume a *closed* metric namespace and
well-nested spans.  The contracts:

* **TEL001** every metric name emitted via ``repro.obs.metrics``
  (``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``) appears in
  the central catalog ``repro.obs.catalog.METRIC_CATALOG`` (or matches a
  declared dynamic prefix such as ``repro_stats_``);
* **TEL002** spans are only opened as context managers (``with
  tracer.span(...)``) — a dangling ``.span()`` call leaves the tracer
  stack unbalanced and every later span mis-parented;
* **TEL003** metric names are string literals, so TEL001 is statically
  checkable (dynamic names are confined to ``repro/obs/metrics.py``);
* **TEL004** the emission's kind and ``labelnames`` match the catalog
  entry — one metric family cannot change shape between call sites.

The catalog is read from the scanned tree itself (the file ending in
``repro/obs/catalog.py``), so fixture trees carry their own miniature
catalogs.  When no catalog file is in scope, TEL001/TEL004 are skipped.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import Finding, LintConfig, ParsedFile, ProjectRule

__all__ = ["TelemetryDisciplineRule", "parse_catalog_ast"]

_CATALOG_SUFFIX = "repro/obs/catalog.py"
#: The registry implementation itself (incl. ``import_nested``) and the
#: catalog module may name metrics dynamically.
_METRIC_EXEMPT = ("repro/obs/metrics.py", _CATALOG_SUFFIX)
#: The tracer implementation constructs spans outside ``with``.
_SPAN_EXEMPT = ("repro/obs/trace.py",)

_EMIT_METHODS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def parse_catalog_ast(
    tree: ast.Module,
) -> Tuple[Dict[str, Tuple[str, Tuple[str, ...]]], Tuple[str, ...]]:
    """Statically read ``METRIC_CATALOG`` / ``DYNAMIC_METRIC_PREFIXES``.

    Returns ``({name: (kind, labels)}, prefixes)``.  Entries whose kind
    or labels cannot be read statically get ``("?", ())`` and are
    treated as name-only matches.
    """
    catalog: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
    prefixes: Tuple[str, ...] = ()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "METRIC_CATALOG" and isinstance(value, ast.Dict):
                for key, spec in zip(value.keys, value.values):
                    if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                        continue
                    catalog[key.value] = _parse_spec(spec)
            elif target.id == "DYNAMIC_METRIC_PREFIXES" and isinstance(
                value, (ast.Tuple, ast.List)
            ):
                prefixes = tuple(
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
    return catalog, prefixes


def _parse_spec(node: ast.expr) -> Tuple[str, Tuple[str, ...]]:
    if not isinstance(node, ast.Call):
        return "?", ()
    kind = "?"
    labels: Tuple[str, ...] = ()
    for keyword in node.keywords:
        if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
            kind = str(keyword.value.value)
        elif keyword.arg == "labels" and isinstance(
            keyword.value, (ast.Tuple, ast.List)
        ):
            labels = tuple(
                element.value
                for element in keyword.value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            )
    return kind, labels


class TelemetryDisciplineRule(ProjectRule):
    name = "telemetry-discipline"
    rule_ids: Tuple[str, ...] = ("TEL001", "TEL002", "TEL003", "TEL004")

    def check_project(
        self, files: Sequence[ParsedFile], config: LintConfig
    ) -> Iterator[Finding]:
        catalog: Optional[Dict[str, Tuple[str, Tuple[str, ...]]]] = None
        prefixes: Tuple[str, ...] = ()
        for src in files:
            if src.matches(_CATALOG_SUFFIX):
                catalog, prefixes = parse_catalog_ast(src.tree)
                break
        for src in files:
            yield from self._check_file(src, catalog, prefixes)

    def _check_file(
        self,
        src: ParsedFile,
        catalog: Optional[Dict[str, Tuple[str, Tuple[str, ...]]]],
        prefixes: Tuple[str, ...],
    ) -> Iterator[Finding]:
        metric_exempt = src.matches(*_METRIC_EXEMPT)
        span_exempt = src.matches(*_SPAN_EXEMPT)
        with_spans = _context_managed_calls(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "span" and not span_exempt:
                if id(node) not in with_spans:
                    yield self._finding(
                        "TEL002",
                        src,
                        node,
                        ".span() call outside a 'with' statement leaves the "
                        "span open and the tracer stack unbalanced",
                        hint="write 'with tracer.span(...) as sp:'",
                    )
            elif func.attr in _EMIT_METHODS and not metric_exempt:
                yield from self._check_metric_call(node, src, catalog, prefixes)

    def _check_metric_call(
        self,
        node: ast.Call,
        src: ParsedFile,
        catalog: Optional[Dict[str, Tuple[str, Tuple[str, ...]]]],
        prefixes: Tuple[str, ...],
    ) -> Iterator[Finding]:
        kind = _EMIT_METHODS[node.func.attr]  # type: ignore[union-attr]
        if not node.args:
            return
        name_node = node.args[0]
        if not (isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)):
            yield self._finding(
                "TEL003",
                src,
                node,
                f"metric name passed to .{kind}() is not a string literal",
                hint="dynamic metric names are confined to repro.obs.metrics "
                "(import_nested); name the family statically",
            )
            return
        name = name_node.value
        if catalog is None:
            return
        if name not in catalog:
            if any(name.startswith(prefix) for prefix in prefixes):
                return
            yield self._finding(
                "TEL001",
                src,
                node,
                f"metric {name!r} is not in repro.obs.catalog.METRIC_CATALOG",
                hint="add a MetricSpec entry (and keep "
                "tests/obs/golden_metrics.prom consistent)",
            )
            return
        want_kind, want_labels = catalog[name]
        if want_kind not in ("?", kind):
            yield self._finding(
                "TEL004",
                src,
                node,
                f"metric {name!r} emitted as {kind} but catalogued as {want_kind}",
                hint="one metric family cannot change kind between call sites",
            )
        got_labels = _call_labelnames(node)
        if got_labels is not None and tuple(got_labels) != want_labels:
            yield self._finding(
                "TEL004",
                src,
                node,
                f"metric {name!r} emitted with labels {tuple(got_labels)!r} "
                f"but catalogued with {want_labels!r}",
                hint="align the labelnames with the catalog entry",
            )


def _call_labelnames(node: ast.Call) -> Optional[List[str]]:
    """The literal ``labelnames`` of an emission call; None if unreadable."""
    label_node: Optional[ast.expr] = None
    for keyword in node.keywords:
        if keyword.arg == "labelnames":
            label_node = keyword.value
    if label_node is None:
        # counter(name, help, labelnames) / histogram(name, help, buckets, labelnames)
        position = 3 if node.func.attr == "histogram" else 2  # type: ignore[union-attr]
        if len(node.args) > position:
            label_node = node.args[position]
    if label_node is None:
        return []
    if isinstance(label_node, (ast.Tuple, ast.List)):
        out = []
        for element in label_node.elts:
            if not (
                isinstance(element, ast.Constant) and isinstance(element.value, str)
            ):
                return None
            out.append(element.value)
        return out
    return None


def _context_managed_calls(tree: ast.Module) -> Set[int]:
    """ids of Call nodes used as a ``with`` item's context expression."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    out.add(id(item.context_expr))
    return out
