"""HYG0xx — generic hygiene checks.

* **HYG001** mutable default arguments (``def f(x=[])`` and the
  call-expression variants ``list()`` / ``dict()`` / ``set()``): the
  default is evaluated once and shared across calls;
* **HYG002** ``==`` / ``!=`` against a *non-zero* float literal on a
  data path: after any arithmetic the comparison is a coin flip — use a
  tolerance (``math.isclose`` / ``np.isclose``).  Comparisons against
  ``0.0`` are exempt: exact zero is a well-defined IEEE-754 sentinel
  (e.g. Algorithm 1's "no corresponding sensor agreed" support value)
  and the codebase uses it as such;
* **HYG003** raw write-mode file I/O (``open(..., "w")`` /
  ``os.fdopen(..., "w")`` with a ``w``/``a``/``x`` mode, or
  ``.write_text()`` / ``.write_bytes()``) inside the ``repro`` package:
  a ``kill -9`` mid-write leaves a torn artifact on disk.  Every
  package writer must route through
  :func:`repro.atomic.write_atomic` (temp file + fsync + atomic
  rename); :mod:`repro.atomic` itself is the single exempt module.
  Read-mode ``open`` is fine;
* **HYG004** ``SharedMemory`` construction (or a
  ``multiprocessing.shared_memory`` import) outside
  ``repro/core/shm.py``: shared-memory segments are OS-level resources
  whose leak/cleanup story (deterministic naming, creator-unlinks,
  resource-tracker SIGKILL coverage) only holds when every block goes
  through the arena.  Mirrors the DET005 single-pool-construction-site
  rule — lifecycle bugs stay findable in one file.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..core import Finding, LintConfig, ParsedFile, Rule

__all__ = ["HygieneRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})

#: The one module allowed raw write-mode file I/O (HYG003): the atomic
#: writer itself, which stages through a temp file + fsync + rename.
_RAW_WRITE_ALLOWED = ("repro/atomic.py",)

#: The one module allowed to construct SharedMemory blocks (HYG004):
#: the arena, which owns naming, unlinking, and SIGKILL cleanup.
_SHM_ALLOWED = ("repro/core/shm.py",)

_WRITE_METHOD_NAMES = frozenset({"write_text", "write_bytes"})


class HygieneRule(Rule):
    name = "generic-hygiene"
    rule_ids: Tuple[str, ...] = ("HYG001", "HYG002", "HYG003", "HYG004")

    def check(self, src: ParsedFile, config: LintConfig) -> Iterator[Finding]:
        posix = src.path.as_posix()
        in_package = ("/repro/" in posix or posix.startswith("repro/")) and (
            not src.matches(*_RAW_WRITE_ALLOWED)
        )
        shm_ok = src.matches(*_SHM_ALLOWED)
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(node, src)
            elif isinstance(node, ast.Compare):
                yield from self._check_float_eq(node, src)
            elif in_package and isinstance(node, ast.Call):
                yield from self._check_raw_write(node, src)
            if not shm_ok:
                yield from self._check_shared_memory(node, src)

    def _check_defaults(self, node: ast.AST, src: ParsedFile) -> Iterator[Finding]:
        args = node.args  # type: ignore[attr-defined]
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
                and not default.args
                and not default.keywords
            )
            if mutable:
                kind = (
                    default.func.id + "()"
                    if isinstance(default, ast.Call)
                    else type(default).__name__.lower() + " literal"
                )
                yield self._finding(
                    "HYG001",
                    src,
                    default,
                    f"mutable default argument ({kind}) is shared across calls",
                    hint="default to None and create the container in the body",
                )

    def _check_raw_write(self, node: ast.Call, src: ParsedFile) -> Iterator[Finding]:
        func = node.func
        opener = None
        if isinstance(func, ast.Name) and func.id == "open":
            opener = "open"
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "fdopen"
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            opener = "os.fdopen"
        if opener is not None:
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and any(flag in mode.value for flag in "wax")
            ):
                yield self._finding(
                    "HYG003",
                    src,
                    node,
                    f"raw write-mode {opener}({mode.value!r}) can leave a "
                    "torn file on crash",
                    hint="route the write through repro.atomic.write_atomic",
                )
            return
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHOD_NAMES:
            yield self._finding(
                "HYG003",
                src,
                node,
                f".{func.attr}() bypasses the crash-consistent writer",
                hint="route the write through repro.atomic.write_atomic",
            )

    def _check_shared_memory(self, node: ast.AST, src: ParsedFile) -> Iterator[Finding]:
        hint = (
            "publish arrays through repro.core.shm.ShmArena / "
            "resolve_payload, the single audited SharedMemory "
            "construction site"
        )
        if isinstance(node, ast.ImportFrom):
            if node.module == "multiprocessing.shared_memory" or (
                node.module == "multiprocessing"
                and any(alias.name == "shared_memory" for alias in node.names)
            ):
                yield self._finding(
                    "HYG004",
                    src,
                    node,
                    "multiprocessing.shared_memory import outside repro.core.shm",
                    hint=hint,
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("multiprocessing.shared_memory"):
                    yield self._finding(
                        "HYG004",
                        src,
                        node,
                        "multiprocessing.shared_memory import outside repro.core.shm",
                        hint=hint,
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "SharedMemory":
                yield self._finding(
                    "HYG004",
                    src,
                    node,
                    "direct SharedMemory construction outside repro.core.shm",
                    hint=hint,
                )

    def _check_float_eq(self, node: ast.Compare, src: ParsedFile) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (left, right):
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)
                    and operand.value != 0.0
                ):
                    yield self._finding(
                        "HYG002",
                        src,
                        node,
                        f"exact float comparison against {operand.value!r}",
                        hint="use math.isclose / np.isclose with an explicit "
                        "tolerance (exact-zero checks are exempt)",
                    )
                    break
