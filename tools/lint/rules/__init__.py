"""Rule registry: every checker the repro-lint suite runs, in id order."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core import Rule
from .concurrency import ConcurrencyRule
from .determinism import DeterminismRule
from .exceptions import ExceptionDisciplineRule
from .hygiene import HygieneRule
from .registry_rules import RegistryCompletenessRule
from .telemetry import TelemetryDisciplineRule

__all__ = ["ALL_RULES", "make_rules", "rules_by_id"]


def make_rules() -> List[Rule]:
    """Fresh rule instances (project rules carry per-run state)."""
    return [
        RegistryCompletenessRule(),
        ExceptionDisciplineRule(),
        DeterminismRule(),
        ConcurrencyRule(),
        TelemetryDisciplineRule(),
        HygieneRule(),
    ]


#: Default rule set used by ``python -m tools.lint``.
ALL_RULES: Tuple[Rule, ...] = tuple(make_rules())


def rules_by_id() -> Dict[str, Rule]:
    """Map every emittable rule id to the checker that owns it."""
    out: Dict[str, Rule] = {}
    for rule in ALL_RULES:
        for rule_id in rule.rule_ids:
            out[rule_id] = rule
    return out
