"""DET1xx — worker purity and ordering determinism (project-wide).

The byte-identical-across-executors guarantee holds only if (a) code
that runs inside pool workers is *pure* with respect to module state and
picklable, and (b) nothing anywhere in the package lets hash-seeded
iteration order leak into RNG consumption, accumulation, or emitted
output.  The PR-5 simulator bug — ``rng.choice(sorted(setup))`` fixed,
but an earlier ``set()`` dedup consuming the RNG in per-process order —
is the canonical instance; these rules make that class of bug a lint
failure instead of a lucky chaos-matrix catch.

DET101/DET102 are scoped to the **worker-reachable set** computed by
:mod:`tools.lint.dataflow` (BFS from the ``_TASK_RUNNERS`` values, the
``engine.run(graph, worker)`` worker arguments, and ``pool.submit``
targets).  DET103/DET104 are package-wide: hash-order and shared-RNG
bugs corrupt determinism from any module (the PR-5 bug lived in
``plant/simulate.py``, which no worker reaches).

* **DET101** — module-global mutation inside worker-reachable code:
  ``global`` rebinding, or in-place mutation (method call, subscript or
  augmented store) of a name bound to a container at module top level.
  Forked workers mutate a *copy*, threads race on the original; either
  way the result depends on executor choice.
* **DET102** — unpicklable/late-binding capture inside worker-reachable
  code: a ``lambda`` or nested ``def`` inside a loop that closes over
  the loop variable without default-binding it (``lambda name=name:``
  is the sanctioned idiom), or construction of ``threading`` sync
  primitives (locks are unpicklable and imply cross-task shared state).
* **DET103** — hash-order-sensitive iteration anywhere in the package:
  a ``for`` statement or comprehension iterating a set expression
  (literal, ``set()``/``frozenset()`` call, set comprehension) whose
  element order can escape.  Order-insensitive sinks are exempt: a
  generator/comprehension feeding ``sorted``/``min``/``max``/``sum``/
  ``len``/``any``/``all``/``set``/``frozenset``, and set-comprehension
  results (still unordered).  Fix: iterate ``sorted(...)``.
* **DET104** — RNG escaping its construction site into shared state:
  module-level or class-body assignment of ``np.random.default_rng`` /
  ``Generator`` / ``PCG64`` / ``TickClock`` objects.  Even a *seeded*
  module-level generator is shared mutable state — every importer
  advances the same stream, so scoring order changes results.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import Finding, LintConfig, ParsedFile, ProjectRule
from ..dataflow import MUTATING_METHODS, FunctionInfo, ModuleInfo, ProjectModel, build_models

__all__ = ["ConcurrencyRule"]

#: Modules exempt from the worker-purity rules: the execution engine
#: itself (owns the pools and the per-task bookkeeping) and the runtime
#: sanitizer (its whole job is maintaining cross-task trackers).
_WORKER_PURITY_EXEMPT = (
    "repro/core/parallel.py",
    "repro/sanitize.py",
)

#: threading primitives whose construction DET102 flags.
_SYNC_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore", "Barrier"}
)

#: Callables that consume an iterable without exposing element order.
_ORDER_INSENSITIVE_SINKS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: RNG/clock constructors DET104 flags at module/class scope.
_SHARED_STATE_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "PCG64", "TickClock"}
)


class ConcurrencyRule(ProjectRule):
    name = "worker-purity-dataflow"
    rule_ids: Tuple[str, ...] = ("DET101", "DET102", "DET103", "DET104")

    def check_project(
        self, files: Sequence[ParsedFile], config: LintConfig
    ) -> Iterator[Finding]:
        models = build_models(files)
        for model in models.values():
            yield from self._check_model(model)

    def _check_model(self, model: ProjectModel) -> Iterator[Finding]:
        for fn in model.reachable_functions():
            module = model.modules[fn.module]
            if module.src.matches(*_WORKER_PURITY_EXEMPT):
                continue
            yield from self._check_global_mutation(fn, module)
            yield from self._check_capture(fn, module)
        for module in model.modules.values():
            parents = _parent_map(module.src.tree)
            yield from self._check_set_iteration(module, parents)
            yield from self._check_shared_rng(module)

    # -- DET101 ------------------------------------------------------

    def _check_global_mutation(
        self, fn: FunctionInfo, module: ModuleInfo
    ) -> Iterator[Finding]:
        src = module.src
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                yield self._finding(
                    "DET101",
                    src,
                    node,
                    f"'global {', '.join(node.names)}' in worker-reachable "
                    f"{_short(fn.qualname)}: workers fork or race on module state",
                    hint="return the value and merge in the parent, or thread "
                    "state through the task payload",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module.mutable_globals
                ):
                    yield self._mutation_finding(
                        src, node, fn, f"{func.value.id}.{func.attr}(...)"
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module.mutable_globals
                    ):
                        yield self._mutation_finding(
                            src, node, fn, f"{target.value.id}[...] = ..."
                        )

    def _mutation_finding(
        self, src: ParsedFile, node: ast.AST, fn: FunctionInfo, what: str
    ) -> Finding:
        return self._finding(
            "DET101",
            src,
            node,
            f"module-global mutation {what} in worker-reachable "
            f"{_short(fn.qualname)}: lost in forked workers, racy in threads",
            hint="return the value from the task and merge deterministically "
            "in the parent process",
        )

    # -- DET102 ------------------------------------------------------

    def _check_capture(
        self, fn: FunctionInfo, module: ModuleInfo
    ) -> Iterator[Finding]:
        src = module.src
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield from self._check_sync_primitive(node, src, fn)
            loop_targets = _loop_target_names(node)
            if loop_targets is None:
                continue
            body = node.body if isinstance(node, (ast.For, ast.AsyncFor)) else [node]
            for inner in body:
                for closure in ast.walk(inner):
                    if not isinstance(closure, (ast.Lambda, ast.FunctionDef)):
                        continue
                    late = _free_names(closure) & loop_targets
                    if late:
                        yield self._finding(
                            "DET102",
                            src,
                            closure,
                            f"closure in worker-reachable {_short(fn.qualname)} "
                            f"captures loop variable(s) {sorted(late)} by "
                            "reference: every closure sees the last iteration",
                            hint="default-bind the loop variable "
                            "(lambda name=name: ...), the idiom "
                            "pipeline._score_series_resilient uses",
                        )

    def _check_sync_primitive(
        self, node: ast.Call, src: ParsedFile, fn: FunctionInfo
    ) -> Iterator[Finding]:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in _SYNC_PRIMITIVES:
            yield self._finding(
                "DET102",
                src,
                node,
                f"threading.{name}() constructed in worker-reachable "
                f"{_short(fn.qualname)}: unpicklable, and implies state "
                "shared across tasks",
                hint="keep synchronization in repro.core.parallel; task "
                "payloads and results must be plain picklable data",
            )

    # -- DET103 ------------------------------------------------------

    def _check_set_iteration(
        self, module: ModuleInfo, parents: Dict[int, ast.AST]
    ) -> Iterator[Finding]:
        src = module.src
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(node.iter):
                yield self._set_iter_finding(src, node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter) and not _order_insensitive_sink(
                        node, parents
                    ):
                        yield self._set_iter_finding(src, gen.iter)

    def _set_iter_finding(self, src: ParsedFile, node: ast.AST) -> Finding:
        return self._finding(
            "DET103",
            src,
            node,
            "iteration over a set exposes hash-seeded element order "
            "(PYTHONHASHSEED-dependent for str keys)",
            hint="iterate sorted(...) — or dict.fromkeys(...) for "
            "first-occurrence dedup, the plant/simulate.py idiom",
        )

    # -- DET104 ------------------------------------------------------

    def _check_shared_rng(self, module: ModuleInfo) -> Iterator[Finding]:
        src = module.src
        scopes: List[Sequence[ast.stmt]] = [src.tree.body]
        scopes.extend(
            stmt.body for stmt in src.tree.body if isinstance(stmt, ast.ClassDef)
        )
        for scope in scopes:
            for stmt in scope:
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                value = stmt.value
                if isinstance(value, ast.Call) and _constructor_name(
                    value.func
                ) in _SHARED_STATE_CONSTRUCTORS:
                    yield self._finding(
                        "DET104",
                        src,
                        stmt,
                        "RNG/clock bound at module or class scope is shared "
                        "mutable state: every consumer advances one stream, "
                        "so results depend on scoring order",
                        hint="construct per task from an explicit seed "
                        "(derive_task_seed) or thread a Generator parameter",
                    )


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def _loop_target_names(node: ast.AST) -> Optional[Set[str]]:
    """Loop-variable names for For nodes and comprehensions; else None."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return _target_names(node.target)
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        names: Set[str] = set()
        for gen in node.generators:
            names |= _target_names(gen.target)
        return names
    return None


def _target_names(target: ast.expr) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            out.add(node.id)
    return out


def _free_names(closure: "ast.Lambda | ast.FunctionDef") -> Set[str]:
    """Names the closure body loads, minus its own parameters.

    Parameter *defaults* evaluate at definition time, so a default-bound
    loop variable (``lambda name=name: ...``) is not a late binding.
    """
    args = closure.args
    params = {
        a.arg
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    }
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)
    body = closure.body if isinstance(closure.body, list) else [closure.body]
    loads: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads.add(node.id)
    return loads - params


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _order_insensitive_sink(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """True when a comprehension's result order cannot escape."""
    parent = parents.get(id(node))
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_INSENSITIVE_SINKS
        and node in parent.args
    )


def _constructor_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents
