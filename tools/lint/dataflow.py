"""Project-wide dataflow model behind the DET1xx concurrency rules.

The per-file rules in this suite see one AST at a time; the worker-purity
contract of ``repro.core.parallel`` is a *cross-file* property: a helper
three imports away from ``_run_scoring_task`` still executes inside a
worker process, and a module-global it mutates is silently forked state.
This module builds the static approximation those rules need:

1. a **module graph** over every scanned file whose path contains a
   ``repro`` package component (fixture trees that mirror the layout get
   their own graph, keyed by the directory that anchors ``repro``);
2. an **import table** per module (absolute and relative, module-level
   and function-level imports alike);
3. a **reference graph** between functions.  Any ``Name`` load or
   resolvable attribute chain inside a function body counts as an edge —
   a deliberate over-approximation that covers the ways workers acquire
   callees in this codebase: direct calls, ``_TASK_RUNNERS``-style
   dispatch dicts, ``functools.partial``, and ``pool.submit``;
4. the **worker entry points**: values of module-level ``_TASK_RUNNERS``
   dicts, the worker argument of ``<engine>.run(graph, worker)`` calls
   in modules that import :class:`ParallelEngine`, and first arguments
   of ``pool.submit(fn, ...)`` inside ``repro/core/parallel.py``;
5. the **worker-reachable set**: BFS closure over the reference graph
   from the entry points.  Referencing a class marks every method of the
   class reachable (instances cross the pickle boundary whole).

Known approximations (see docs/STATIC_ANALYSIS.md):

* over: bare-name references count as calls even when only stored;
  reaching a class reaches all its methods; nested functions are folded
  into their parent's reference set.
* under: attribute chains through instance state (``self.x.fn()``),
  callables stored in containers other than ``_TASK_RUNNERS``, and
  ``getattr``/string dispatch are invisible.

Pure stdlib ``ast``; never imports the code under analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import ParsedFile

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectModel", "build_models", "module_name_for"]

#: Container-mutating method names (DET101 flags them on module globals).
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "add", "discard", "update", "setdefault", "popitem",
        "appendleft", "extendleft",
    }
)


def module_name_for(posix_path: str) -> Optional[str]:
    """Dotted module name anchored at the last ``repro`` path component.

    ``src/repro/core/parallel.py`` -> ``repro.core.parallel``;
    ``tests/lint/fixtures/bad/repro/util_bad.py`` -> ``repro.util_bad``;
    paths without a ``repro`` component return None.
    """
    parts = posix_path.split("/")
    if not parts or not parts[-1].endswith(".py"):
        return None
    try:
        anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def _anchor_root(posix_path: str) -> str:
    """Directory prefix that contains the ``repro`` package component."""
    parts = posix_path.split("/")
    anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
    return "/".join(parts[:anchor])


@dataclass
class FunctionInfo:
    """One function or method, addressed by dotted qualname."""

    qualname: str          #: e.g. ``repro.core.pipeline._run_phase_task``
    module: str            #: owning module's dotted name
    node: ast.AST          #: FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None  #: owning class qualname for methods


@dataclass
class ModuleInfo:
    """Statically extracted surface of one module."""

    name: str
    src: ParsedFile
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    class_methods: Dict[str, List[str]] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)
    #: Names bound at module top level (any assignment target).
    module_globals: Set[str] = field(default_factory=set)
    #: Subset of ``module_globals`` bound to mutable containers.
    mutable_globals: Set[str] = field(default_factory=set)

    @property
    def package(self) -> str:
        return self.name if self.src.path.name == "__init__.py" else self.name.rsplit(".", 1)[0]


_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


def _collect_module(src: ParsedFile, name: str) -> ModuleInfo:
    info = ModuleInfo(name=name, src=src)
    _collect_imports(info, src.tree)
    for stmt in src.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{name}.{stmt.name}"
            info.functions[qual] = FunctionInfo(qual, name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            cls_qual = f"{name}.{stmt.name}"
            methods: List[str] = []
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    mqual = f"{cls_qual}.{item.name}"
                    info.functions[mqual] = FunctionInfo(mqual, name, item, cls=cls_qual)
                    methods.append(mqual)
            info.class_methods[cls_qual] = methods
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            mutable = isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                         ast.DictComp, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_CONSTRUCTORS
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    info.module_globals.add(target.id)
                    if mutable:
                        info.mutable_globals.add(target.id)
    return info


def _collect_imports(info: ModuleInfo, tree: ast.Module) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_base(info, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{base}.{alias.name}" if base else alias.name


def _resolve_from_base(info: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
    if node.level == 0:
        return node.module or ""
    package_parts = info.package.split(".")
    up = node.level - 1
    if up > len(package_parts):
        return None
    base_parts = package_parts[: len(package_parts) - up]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts)


class ProjectModel:
    """Module graph + reference graph + worker-reachable closure."""

    def __init__(self, modules: Dict[str, ModuleInfo]):
        self.modules = modules
        self._functions: Dict[str, FunctionInfo] = {}
        self._class_methods: Dict[str, List[str]] = {}
        for mod in modules.values():
            self._functions.update(mod.functions)
            self._class_methods.update(mod.class_methods)
        self.entry_points: List[str] = self._discover_entry_points()
        self.worker_reachable: Set[str] = self._closure(self.entry_points)

    @classmethod
    def build(cls, files: Sequence[ParsedFile]) -> "ProjectModel":
        modules: Dict[str, ModuleInfo] = {}
        for src in files:
            name = module_name_for(src.path.as_posix())
            if name is not None:
                modules[name] = _collect_module(src, name)
        return cls(modules)

    # -- resolution -------------------------------------------------

    def _resolve_dotted(self, dotted: str) -> List[str]:
        """Qualnames a dotted path resolves to (methods of a class count)."""
        if dotted in self._functions:
            return [dotted]
        if dotted in self._class_methods:
            return list(self._class_methods[dotted])
        return []

    def _resolve_name(self, module: ModuleInfo, name: str) -> List[str]:
        local = f"{module.name}.{name}"
        hit = self._resolve_dotted(local)
        if hit:
            return hit
        target = module.imports.get(name)
        if target is not None:
            return self._resolve_dotted(target)
        return []

    def _resolve_chain(
        self, module: ModuleInfo, chain: Tuple[str, ...], owner: Optional[str]
    ) -> List[str]:
        if len(chain) == 1:
            return self._resolve_name(module, chain[0])
        head = chain[0]
        if head == "self" and owner is not None:
            return self._resolve_dotted(f"{owner}.{chain[-1]}")
        base = module.imports.get(head, head)
        for split in range(len(chain), 1, -1):
            dotted = ".".join([base, *chain[1:split]])
            hit = self._resolve_dotted(dotted)
            if hit:
                return hit
        return []

    # -- reference edges --------------------------------------------

    def references(self, qualname: str) -> List[str]:
        """Functions/methods referenced anywhere in ``qualname``'s body."""
        fn = self._functions[qualname]
        module = self.modules[fn.module]
        out: List[str] = []
        seen: Set[str] = set()
        for node in ast.walk(fn.node):
            resolved: List[str] = []
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                resolved = self._resolve_name(module, node.id)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                chain = _attribute_chain(node)
                if chain is not None:
                    resolved = self._resolve_chain(module, chain, fn.cls)
            for qual in resolved:
                if qual != qualname and qual not in seen:
                    seen.add(qual)
                    out.append(qual)
        return out

    # -- worker entry points ----------------------------------------

    def _discover_entry_points(self) -> List[str]:
        entries: List[str] = []
        seen: Set[str] = set()

        def add(quals: List[str]) -> None:
            for qual in quals:
                if qual not in seen:
                    seen.add(qual)
                    entries.append(qual)

        for module in self.modules.values():
            # 1. values of module-level _TASK_RUNNERS-style dispatch dicts
            for stmt in module.src.tree.body:
                if (
                    isinstance(stmt, (ast.Assign, ast.AnnAssign))
                    and isinstance(stmt.value, ast.Dict)
                ):
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    )
                    named = any(
                        isinstance(t, ast.Name) and t.id == "_TASK_RUNNERS"
                        for t in targets
                    )
                    if named:
                        for value in stmt.value.values:
                            if isinstance(value, ast.Name):
                                add(self._resolve_name(module, value.id))
            # 2. the worker argument of <engine>.run(graph, worker) in
            #    modules that import ParallelEngine
            imports_engine = any(
                target.endswith("ParallelEngine") or target.endswith("core.parallel")
                for target in module.imports.values()
            ) or module.name.endswith("core.parallel")
            if imports_engine:
                for node in ast.walk(module.src.tree):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "run"
                        and len(node.args) >= 2
                    ):
                        add(self._worker_arg(module, node.args[1]))
            # 3. first arguments of pool.submit(fn, ...) inside the engine
            if module.name.endswith("core.parallel"):
                for node in ast.walk(module.src.tree):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "submit"
                        and node.args
                    ):
                        add(self._worker_arg(module, node.args[0]))
        return entries

    def _worker_arg(self, module: ModuleInfo, arg: ast.expr) -> List[str]:
        """Resolve a worker-position argument: name, partial, or cast(...)."""
        if isinstance(arg, ast.Name):
            return self._resolve_name(module, arg.id)
        if isinstance(arg, ast.Call):
            func = arg.func
            fname = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if fname == "partial" and arg.args:
                return self._worker_arg(module, arg.args[0])
            if fname == "cast" and len(arg.args) >= 2:
                return self._worker_arg(module, arg.args[1])
        return []

    # -- reachability -----------------------------------------------

    def _closure(self, roots: Sequence[str]) -> Set[str]:
        reached: Set[str] = set()
        stack = [qual for qual in roots if qual in self._functions]
        while stack:
            qual = stack.pop()
            if qual in reached:
                continue
            reached.add(qual)
            for ref in self.references(qual):
                if ref not in reached:
                    stack.append(ref)
        return reached

    def reachable_functions(self) -> Iterator[FunctionInfo]:
        """Worker-reachable functions in deterministic qualname order."""
        for qual in sorted(self.worker_reachable):
            yield self._functions[qual]


def build_models(files: Sequence[ParsedFile]) -> Dict[str, ProjectModel]:
    """One :class:`ProjectModel` per ``repro`` anchor root, in path order.

    A mixed scan (real ``src/`` plus fixture trees that mirror the
    layout) must not fuse distinct packages into one graph, so files are
    grouped by the directory that contains their ``repro`` component.
    """
    groups: Dict[str, List[ParsedFile]] = {}
    for src in files:
        posix = src.path.as_posix()
        if module_name_for(posix) is None:
            continue
        groups.setdefault(_anchor_root(posix), []).append(src)
    return {root: ProjectModel.build(group) for root, group in sorted(groups.items())}


def _attribute_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
