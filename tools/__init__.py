"""Repo tooling: API-doc generation and the repro-lint static-analysis suite."""
