"""Setup shim for legacy editable installs (offline environment without wheel)."""

from setuptools import setup

setup()
